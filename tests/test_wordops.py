"""Tests for 64-bit word arithmetic helpers (the 128-bit product emulation)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory.wordops import mul_hi_u64, mul_lo_u64, mul_wide_u64, split_u64

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSplit:
    def test_split_basic(self):
        hi, lo = split_u64(np.array([0x1234567890ABCDEF], dtype=np.uint64))
        assert int(hi[0]) == 0x12345678
        assert int(lo[0]) == 0x90ABCDEF

    def test_split_zero(self):
        hi, lo = split_u64(np.array([0], dtype=np.uint64))
        assert int(hi[0]) == 0 and int(lo[0]) == 0


class TestWideMultiply:
    @given(a=U64, b=U64)
    @settings(max_examples=300, deadline=None)
    def test_property_wide_product(self, a, b):
        hi, lo = mul_wide_u64(np.uint64(a), np.uint64(b))
        assert (int(hi) << 64) + int(lo) == a * b

    @given(a=U64, b=U64)
    @settings(max_examples=200, deadline=None)
    def test_property_hi_lo_consistent(self, a, b):
        assert int(mul_hi_u64(np.uint64(a), np.uint64(b))) == (a * b) >> 64
        assert int(mul_lo_u64(np.uint64(a), np.uint64(b))) == (a * b) & ((1 << 64) - 1)

    def test_vectorized(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 63, size=1000, dtype=np.uint64) * 2 + 1
        b = rng.integers(0, 1 << 63, size=1000, dtype=np.uint64) * 2 + 1
        hi, lo = mul_wide_u64(a, b)
        for i in range(0, 1000, 97):
            product = int(a[i]) * int(b[i])
            assert (int(hi[i]) << 64) + int(lo[i]) == product

    def test_extremes(self):
        top = np.uint64((1 << 64) - 1)
        hi, lo = mul_wide_u64(top, top)
        expected = ((1 << 64) - 1) ** 2
        assert (int(hi) << 64) + int(lo) == expected
