"""Tests for the CROSS compiler (HE kernel -> device op lowering)."""

import pytest

from repro.core.compiler import MODRED_VPU_OPS, CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.core.kernel_ir import Category, MatMulOp, PermuteOp, TypeConvertOp, VectorOp

SET_A = PARAMETER_SETS["A"]
SET_D = PARAMETER_SETS["D"]


@pytest.fixture(scope="module")
def cross():
    return CrossCompiler(SET_D, CompilerOptions.cross_default())


@pytest.fixture(scope="module")
def baseline():
    return CrossCompiler(SET_D, CompilerOptions.gpu_baseline())


class TestOptions:
    def test_defaults(self):
        options = CompilerOptions.cross_default()
        assert options.use_bat and options.use_mat
        assert options.ntt_algorithm == "three_step"
        assert options.modred == "montgomery"

    def test_gpu_baseline(self):
        options = CompilerOptions.gpu_baseline()
        assert not options.use_bat and not options.use_mat
        assert options.ntt_algorithm == "four_step"
        assert options.sparse_fallback

    def test_with_modred(self):
        options = CompilerOptions.cross_default().with_modred("barrett")
        assert options.modred == "barrett"
        assert options.use_bat  # other fields preserved

    def test_all_modred_costs_defined(self):
        for name in ("montgomery", "barrett", "shoup", "bat_lazy"):
            assert MODRED_VPU_OPS[name] > 0
        assert MODRED_VPU_OPS["montgomery"] < MODRED_VPU_OPS["barrett"] < MODRED_VPU_OPS["shoup"]


class TestPrimitives:
    def test_chunk_count(self, cross):
        assert cross.chunk_count == 4

    def test_tile_shape(self, cross):
        assert cross.ntt_tile_shape() == (128, 512)
        assert cross.ntt_tile_shape(2**12) == (128, 32)

    def test_vecmodmul_elements(self, cross):
        graph = cross.vec_mod_mul(limbs=3, batch=2)
        ops = [op for op in graph.ops if isinstance(op, VectorOp)]
        assert ops[0].elements == SET_D.degree * 3 * 2

    def test_vecmodmul_bat_lazy_emits_matmul(self):
        compiler = CrossCompiler(SET_D, CompilerOptions.cross_default().with_modred("bat_lazy"))
        graph = compiler.vec_mod_mul(limbs=1)
        assert graph.count(MatMulOp) == 1
        assert graph.count(TypeConvertOp) == 1

    def test_vec_add_cheaper_than_mul(self, cross):
        mul_ops = cross.vec_mod_mul(limbs=1).total_vector_ops
        add_ops = cross.vec_mod_add(limbs=1).total_vector_ops
        assert add_ops < mul_ops


class TestNttLowering:
    def test_three_step_uses_mxu_and_no_permutes(self, cross):
        graph = cross.ntt(limbs=1)
        matmuls = [op for op in graph.ops if isinstance(op, MatMulOp)]
        assert len(matmuls) == 2
        assert all(op.operand_bits == 8 for op in matmuls)
        # MAT removes every runtime transpose / bit-reverse.
        permutes = [
            op for op in graph.ops
            if isinstance(op, PermuteOp) and op.category == Category.PERMUTATION
        ]
        assert permutes == []

    def test_four_step_baseline_has_explicit_reordering(self, baseline):
        graph = baseline.ntt(limbs=1)
        permutes = [
            op for op in graph.ops
            if isinstance(op, PermuteOp) and op.category == Category.PERMUTATION
        ]
        assert len(permutes) == 2  # transpose + bit-reverse

    def test_sparse_baseline_matmuls_are_larger(self, cross, baseline):
        cross_macs = cross.ntt(limbs=1).total_macs
        baseline_macs = baseline.ntt(limbs=1).total_macs
        assert baseline_macs > cross_macs
        # The sparse Toeplitz expansion is (2K-1)/K = 7/4 bigger on one side.
        assert baseline_macs / cross_macs == pytest.approx(7 / 4, rel=0.05)

    def test_radix2_lowering(self):
        compiler = CrossCompiler(SET_A, CompilerOptions.vpu_only_baseline())
        graph = compiler.ntt(limbs=1)
        assert graph.count(MatMulOp) == 0
        stages = SET_A.degree.bit_length() - 1
        assert graph.count(PermuteOp) == stages

    def test_intt_has_final_scaling(self, cross):
        ntt_ops = len(cross.ntt(limbs=1).ops)
        intt_ops = len(cross.ntt(limbs=1, inverse=True).ops)
        assert intt_ops == ntt_ops + 1

    def test_intt_category(self, cross):
        graph = cross.ntt(limbs=1, inverse=True)
        matmuls = [op for op in graph.ops if isinstance(op, MatMulOp)]
        assert all(op.category == Category.INTT_MATMUL for op in matmuls)

    def test_batch_scales_work(self, cross):
        single = cross.ntt(limbs=1, batch=1).total_macs
        batched = cross.ntt(limbs=1, batch=8).total_macs
        assert batched == 8 * single


class TestBConvLowering:
    def test_bat_bconv_dimensions(self, cross):
        graph = cross.bconv(limbs_in=12, limbs_out=28)
        matmul = next(op for op in graph.ops if isinstance(op, MatMulOp))
        assert matmul.operand_bits == 8
        assert matmul.m == 4 * 28 and matmul.k == 4 * 12 and matmul.n == SET_D.degree

    def test_baseline_bconv_runs_on_vpu(self):
        compiler = CrossCompiler(
            SET_D, CompilerOptions(use_bat=False, use_mat=True, sparse_fallback=False)
        )
        graph = compiler.bconv(limbs_in=12, limbs_out=28)
        matmul = next(op for op in graph.ops if isinstance(op, MatMulOp))
        assert matmul.operand_bits == 32

    def test_bconv_step1_always_present(self, cross):
        graph = cross.bconv(limbs_in=4, limbs_out=8)
        assert any("step1" in op.name for op in graph.ops)


class TestOperators:
    def test_operator_dispatch(self, cross):
        for name in ("he_add", "he_mult", "rescale", "rotate"):
            assert cross.operator(name).ops

    def test_unknown_operator(self, cross):
        with pytest.raises(KeyError):
            cross.operator("bootstrap")

    def test_he_add_is_tiny(self, cross):
        assert len(cross.he_add().ops) == 1

    def test_he_mult_contains_keyswitch(self, cross):
        names = [op.name for op in cross.he_mult().ops]
        assert any("relin" in name for name in names)
        assert any("tensor-product" in name for name in names)

    def test_rotate_contains_automorphism_gather(self, cross):
        graph = cross.rotate()
        gathers = [
            op for op in graph.ops
            if isinstance(op, PermuteOp) and op.category == Category.AUTOMORPHISM
        ]
        assert len(gathers) == 1
        assert gathers[0].pattern == "gather"

    def test_keyswitch_digit_count(self, cross):
        graph = cross.key_switch()
        digit_bconvs = [op for op in graph.ops if "digit" in op.name and "bconv" in op.name]
        # One BConv step-2 matmul per digit (dnum = 3).
        assert len([op for op in digit_bconvs if isinstance(op, MatMulOp)]) == SET_D.dnum

    def test_level_parameter_shrinks_work(self, cross):
        full = cross.he_mult(limbs=51).total_vector_ops
        half = cross.he_mult(limbs=24).total_vector_ops
        assert half < full

    def test_parameter_load(self, cross):
        graph = cross.parameter_load(1 << 20)
        assert graph.ops[0].bytes_moved == 1 << 20
