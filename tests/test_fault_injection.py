"""Fault-injection drills: every injected fault is detected or healed.

The guardrail contract under test: a corrupted payload, table, kernel, or
calibration fact must end in a typed :class:`repro.errors.ReproError` (the
fault is *detected*) or in a quarantine + degradation-ladder fallback whose
results stay bit-exact and whose event is recorded in `repro.diagnostics`
(the fault is *healed*).  No drill may produce a silently wrong transform or
decode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import diagnostics
from repro.errors import (
    BackendExactnessError,
    IncompatibleOperands,
    ReproError,
)
from repro.numtheory.primes import generate_ntt_prime
from repro.poly import ntt_engine
from repro.poly.gemm_mod import set_strict
from repro.poly.ntt_engine import (
    BACKEND_BUTTERFLY,
    BACKEND_FOUR_STEP,
    BACKEND_FUSED,
    NttPlan,
    clear_quarantine,
    plan_for,
    plan_stack_for,
    quarantine_backend,
    quarantined_backends,
    reset_sentinels,
    verify_plan,
)
from repro.testing import (
    calibration_lie,
    corrupted_butterfly_tables,
    corrupted_four_step_tables,
    corrupted_fused_tables,
    flipped_ciphertext_bit,
    perturbed_gemm_outputs,
)

DEGREE = 64


@pytest.fixture(autouse=True)
def clean_guardrails(monkeypatch):
    """Every drill starts and ends with no quarantine and a clean event log.

    The drills steer dispatch themselves (auto resolution or an explicit
    in-test pin), so an externally pinned ``REPRO_NTT_BACKEND`` -- the CI
    cross-backend matrix -- is cleared: it would re-route the drill away
    from the backend whose guardrail is under test.
    """
    monkeypatch.delenv("REPRO_NTT_BACKEND", raising=False)
    clear_quarantine()
    diagnostics.clear_events()
    yield
    clear_quarantine()
    reset_sentinels()
    diagnostics.clear_events()


@pytest.fixture(scope="module")
def ring():
    q = generate_ntt_prime(28, DEGREE)
    plan = plan_for(DEGREE, q)
    probe = (np.arange(DEGREE, dtype=np.uint64) * np.uint64(7919)) % np.uint64(q)
    return {"q": q, "plan": plan, "probe": probe, "truth": plan.forward(probe.copy())}


class TestCiphertextBitFlip:
    def test_strict_mode_detects_non_canonical_payload(self, ckks_setup, rng):
        env = ckks_setup
        z = rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(z))
        other = env["encryptor"].encrypt(env["encoder"].encode(z))
        previous = set_strict(True)
        try:
            with flipped_ciphertext_bit(ct, bit=63):
                with pytest.raises(IncompatibleOperands, match="non-canonical"):
                    env["evaluator"].add(ct, other)
        finally:
            set_strict(previous)
        # Fault reverted: the ciphertext is healthy again.
        set_strict(True)
        try:
            env["evaluator"].add(ct, other)
        finally:
            set_strict(previous)

    def test_flip_is_reverted_on_exit(self, ckks_setup, rng):
        env = ckks_setup
        z = rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(z))
        original = int(ct.c0.residues[0, 0])
        with flipped_ciphertext_bit(ct):
            assert int(ct.c0.residues[0, 0]) != original
        assert int(ct.c0.residues[0, 0]) == original


class TestFourStepTableCorruption:
    def test_sentinel_heals_fresh_plan(self, ring):
        """A fresh (un-vetted) plan's build sentinel catches the corruption."""
        reset_sentinels()
        plan = ring["plan"]
        with corrupted_four_step_tables(plan):
            assert plan.resolve_backend() == BACKEND_FOUR_STEP
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"]), "healed result must be exact"
            assert BACKEND_FOUR_STEP in quarantined_backends()
            assert diagnostics.events("backend_quarantined")
        assert not quarantined_backends()
        assert np.array_equal(plan.forward(ring["probe"].copy()), ring["truth"])

    def test_verify_plan_quarantines_vetted_plan(self, ring):
        """A plan vetted before the fault needs the re-probe to catch it."""
        plan = ring["plan"]
        plan.forward(ring["probe"].copy())  # vet the tables pre-fault
        with corrupted_four_step_tables(plan):
            assert not verify_plan(plan)
            assert BACKEND_FOUR_STEP in quarantined_backends()
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"])
        assert verify_plan(ring["plan"])

    def test_strict_spot_check_detects(self, ring, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_SPOT_STRIDE", "1")
        plan = ring["plan"]
        plan.forward(ring["probe"].copy())  # vet pre-fault: sentinel passes
        previous = set_strict(True)
        try:
            with corrupted_four_step_tables(plan):
                if plan.resolve_backend() == BACKEND_FOUR_STEP:
                    with pytest.raises(BackendExactnessError):
                        plan.forward(ring["probe"].copy())
                    # quarantined by the failed check: next call heals
                    out = plan.forward(ring["probe"].copy())
                    assert np.array_equal(out, ring["truth"])
        finally:
            set_strict(previous)

    def test_stack_sentinel_heals(self):
        from repro.numtheory.crt import RnsBasis

        basis = RnsBasis.generate(3, 28, DEGREE)
        stack = plan_stack_for(basis.moduli, DEGREE)
        matrix = np.stack(
            [
                (np.arange(DEGREE, dtype=np.uint64) * np.uint64(31 + i))
                % np.uint64(q)
                for i, q in enumerate(basis.moduli)
            ]
        )
        truth = stack.forward(matrix.copy())
        reset_sentinels()
        with corrupted_four_step_tables(stack):
            out = stack.forward(matrix.copy())
            assert np.array_equal(out, truth)
            assert BACKEND_FOUR_STEP in quarantined_backends()
        assert np.array_equal(stack.forward(matrix.copy()), truth)


class TestFusedTableCorruption:
    def test_sentinel_quarantines_fused_and_heals_to_four_step(
        self, ring, monkeypatch
    ):
        """The fused rung falls one step down the ladder, bit-exactly."""
        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        reset_sentinels()
        plan = ring["plan"]
        with corrupted_fused_tables(plan):
            assert plan.resolve_backend() == BACKEND_FUSED
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"]), "healed result must be exact"
            assert BACKEND_FUSED in quarantined_backends()
            # The fused backend owns its constant packs: four_step survives.
            assert BACKEND_FOUR_STEP not in quarantined_backends()
            assert plan.resolve_backend() == BACKEND_FOUR_STEP
            assert diagnostics.events("backend_quarantined")
        assert not quarantined_backends()
        assert np.array_equal(plan.forward(ring["probe"].copy()), ring["truth"])

    def test_verify_plan_quarantines_vetted_fused_plan(self, ring, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        plan = ring["plan"]
        reset_sentinels()
        plan.forward(ring["probe"].copy())  # vet the fused tables pre-fault
        with corrupted_fused_tables(plan):
            assert not verify_plan(plan)
            assert BACKEND_FUSED in quarantined_backends()
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"])
        assert verify_plan(plan)

    def test_four_step_tables_unaffected_by_fused_fault(self, ring):
        plan = ring["plan"]
        with corrupted_fused_tables(plan):
            out = plan.four_step_tables().forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"])

    def test_stack_sentinel_heals(self, monkeypatch):
        from repro.numtheory.crt import RnsBasis

        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        basis = RnsBasis.generate(3, 28, DEGREE)
        stack = plan_stack_for(basis.moduli, DEGREE)
        matrix = np.stack(
            [
                (np.arange(DEGREE, dtype=np.uint64) * np.uint64(31 + i))
                % np.uint64(q)
                for i, q in enumerate(basis.moduli)
            ]
        )
        truth = stack.forward(matrix.copy())
        reset_sentinels()
        with corrupted_fused_tables(stack):
            out = stack.forward(matrix.copy())
            assert np.array_equal(out, truth)
            assert BACKEND_FUSED in quarantined_backends()
        assert np.array_equal(stack.forward(matrix.copy()), truth)


class TestButterflyTableCorruption:
    def test_verify_plan_quarantines_butterfly(self, ring):
        plan = NttPlan(
            degree=DEGREE,
            modulus=ring["q"],
            psi=ring["plan"].psi,
            backend=BACKEND_BUTTERFLY,
        )
        with corrupted_butterfly_tables(plan):
            assert not verify_plan(plan)
            assert BACKEND_BUTTERFLY in quarantined_backends()
            # The ladder's butterfly rung is gone: dispatch heals elsewhere.
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"])
        assert verify_plan(plan)

    def test_strict_spot_check_detects_butterfly(self, ring, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_SPOT_STRIDE", "1")
        plan = NttPlan(
            degree=DEGREE,
            modulus=ring["q"],
            psi=ring["plan"].psi,
            backend=BACKEND_BUTTERFLY,
        )
        previous = set_strict(True)
        try:
            with corrupted_butterfly_tables(plan):
                with pytest.raises(BackendExactnessError):
                    plan.forward(ring["probe"].copy())
        finally:
            set_strict(previous)


class TestGemmPerturbation:
    def test_sentinel_heals_perturbed_cascade(self, ring):
        reset_sentinels()
        plan = ring["plan"]
        with perturbed_gemm_outputs():
            out = plan.forward(ring["probe"].copy())
            assert np.array_equal(out, ring["truth"])
            assert BACKEND_FOUR_STEP in quarantined_backends()
        assert np.array_equal(plan.forward(ring["probe"].copy()), ring["truth"])


class TestCalibrationLie:
    def test_lie_heals_with_recorded_fallback(self):
        wide_q = generate_ntt_prime(30, 8192)
        plan = plan_for(8192, wide_q)
        assert not ntt_engine.four_step_supported(8192, (wide_q,))
        probe = (np.arange(8192, dtype=np.uint64) * np.uint64(97)) % np.uint64(
            wide_q
        )
        truth = plan.forward(probe.copy())
        with calibration_lie():
            assert plan.resolve_backend() == BACKEND_FOUR_STEP
            out = plan.forward(probe.copy())
            assert np.array_equal(out, truth), "lied dispatch must heal bit-exactly"
            assert diagnostics.events("backend_fallback")
        assert plan.resolve_backend() != BACKEND_FOUR_STEP

    def test_direct_use_of_inexact_tables_is_typed(self):
        wide_q = generate_ntt_prime(30, 8192)
        tables = plan_for(8192, wide_q).four_step_tables()
        assert not tables.exact
        with pytest.raises(BackendExactnessError):
            tables.forward(np.zeros(8192, dtype=np.uint64))


class TestQuarantineApi:
    def test_quarantine_is_idempotent_and_observable(self):
        quarantine_backend(BACKEND_FOUR_STEP, reason="drill")
        quarantine_backend(BACKEND_FOUR_STEP, reason="drill")
        assert quarantined_backends() == frozenset({BACKEND_FOUR_STEP})
        assert len(diagnostics.events("backend_quarantined")) == 1
        clear_quarantine()
        assert not quarantined_backends()

    def test_reference_cannot_be_quarantined(self):
        with pytest.raises(ReproError):
            quarantine_backend("reference", reason="drill")

    def test_quarantine_reroutes_resolution(self, ring):
        plan = ring["plan"]
        assert plan.resolve_backend() == BACKEND_FOUR_STEP
        quarantine_backend(BACKEND_FOUR_STEP, reason="drill")
        assert plan.resolve_backend() == BACKEND_BUTTERFLY
        quarantine_backend(BACKEND_BUTTERFLY, reason="drill")
        assert plan.resolve_backend() == "reference"
        out = plan.forward(ring["probe"].copy())
        assert np.array_equal(out, ring["truth"])
        clear_quarantine()
        assert plan.resolve_backend() == BACKEND_FOUR_STEP
