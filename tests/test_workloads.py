"""Tests for the MNIST and HELR workload models and the functional layer demo."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import SecurityParams
from repro.tpu import TensorCoreDevice
from repro.workloads import (
    HelrIterationSchedule,
    MnistCnnSchedule,
    estimate_helr_iteration,
    estimate_mnist_inference,
    run_encrypted_linear_layer,
)

MNIST_PARAMS = SecurityParams(name="mnist", degree=2**13, log_q=28, limbs=18, dnum=3)


@pytest.fixture(scope="module")
def mnist_compiler():
    return CrossCompiler(MNIST_PARAMS, CompilerOptions.cross_default())


@pytest.fixture(scope="module")
def device():
    return TensorCoreDevice.for_generation("TPUv6e")


class TestMnistSchedule:
    def test_counts_positive(self):
        counts = MnistCnnSchedule().operator_counts()
        assert all(value > 0 for value in counts.values())
        assert counts["rotate"] > counts["he_mult"]

    def test_conv_output_size(self):
        layer = MnistCnnSchedule().conv_layers[0]
        assert layer.output_size == 30

    def test_estimate(self, mnist_compiler, device):
        estimate = estimate_mnist_inference(mnist_compiler, device, tensor_cores=8)
        assert estimate.latency_ms > 1
        # Same order of magnitude as the paper's 270 ms per image.
        assert estimate.latency_ms < 10_000

    def test_cross_faster_than_baseline(self, device):
        cross = estimate_mnist_inference(
            CrossCompiler(MNIST_PARAMS, CompilerOptions.cross_default()), device
        )
        baseline = estimate_mnist_inference(
            CrossCompiler(MNIST_PARAMS, CompilerOptions.gpu_baseline()), device
        )
        assert cross.latency_s < baseline.latency_s


class TestHelrSchedule:
    def test_counts(self):
        schedule = HelrIterationSchedule()
        counts = schedule.operator_counts()
        assert schedule.sample_blocks == 49
        assert counts["rotate"] > 0 and counts["he_mult"] > 0

    def test_estimate(self, mnist_compiler, device):
        estimate = estimate_helr_iteration(mnist_compiler, device)
        assert estimate.latency_ms > 1
        assert "rotate" in estimate.operator_latencies_us


class TestFunctionalLinearLayer:
    def test_encrypted_diagonal_layer(self, ckks_setup, rng):
        params = ckks_setup["params"]
        encoder = ckks_setup["encoder"]
        slots = params.slot_count
        x = rng.uniform(-1, 1, slots)
        weights = rng.uniform(-1, 1, slots)
        bias = rng.uniform(-0.5, 0.5, slots)
        ciphertext = ckks_setup["encryptor"].encrypt(encoder.encode_real(x))
        result = run_encrypted_linear_layer(
            ckks_setup["evaluator"], encoder, ciphertext, weights, bias
        )
        decoded = encoder.decode(ckks_setup["decryptor"].decrypt(result)).real
        expected = weights * x + bias
        assert np.abs(decoded - expected).max() < 0.05
