"""Exactness property tests for the shared split-float64 GEMM kernel.

`repro.poly.gemm_mod` is the one implementation behind BConv's block matmuls
and the NTT engine's four-step backend, so its exactness contract is tested
directly here: random word-sized moduli, adversarial all-max operands that
drive every dot product to the edge of the float64 budget (and the uint64
recombination toward 2**63), and the division-free reduction algebra.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.gemm_mod import (
    FLOAT64_EXACT_BITS,
    as_blas_operand,
    canonical_from_lazy,
    is_strict,
    lazy_mod_reduce,
    modular_matmul,
    set_strict,
    split_halves,
    split_matmul,
    split_matrix,
    split_shift,
)
from repro.poly.modmat import modmatmul


def _object_matmul(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Python-int matmul oracle (no overflow by construction)."""
    result = a.astype(object) @ b.astype(object)
    return (result % modulus).astype(np.uint64)


class TestSplitShift:
    def test_budget_respected(self):
        # 28-bit operands/matrix over 64 terms: 28 + 14 + 6 = 48 <= 52.
        assert split_shift(28, 28, 64) == 14
        # 30-bit over 128 terms: 30 + 15 + 7 = 52, exactly at the budget.
        assert split_shift(30, 30, 128) == 15

    def test_over_budget_returns_none(self):
        assert split_shift(31, 31, 128) is None
        assert split_shift(53, 1, 1) is None

    def test_inner_length_one(self):
        assert split_shift(20, 20, 1) is not None

    def test_invalid_inner_length(self):
        with pytest.raises(ValueError):
            split_shift(10, 10, 0)

    @given(
        operand_bits=st.integers(1, 40),
        matrix_bits=st.integers(1, 40),
        inner=st.integers(1, 4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_implies_exactness_bound(self, operand_bits, matrix_bits, inner):
        shift = split_shift(operand_bits, matrix_bits, inner)
        if shift is None:
            return
        length_bits = max(1, inner - 1).bit_length()
        assert (
            operand_bits + max(shift, matrix_bits - shift) + length_bits
            <= FLOAT64_EXACT_BITS
        )


class TestSplitMatmulExactness:
    @given(
        bits=st.integers(8, 30),
        rows=st.integers(1, 12),
        inner=st.integers(1, 24),
        cols=st.integers(1, 12),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_word_sized_moduli(self, bits, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        modulus = int(rng.integers(1 << (bits - 1), 1 << bits)) | 1
        if modulus <= 2:
            modulus = 3
        shift = split_shift(bits, bits, inner)
        if shift is None:
            return
        matrix = rng.integers(0, modulus, (rows, inner), dtype=np.uint64)
        operand = rng.integers(0, modulus, (inner, cols), dtype=np.uint64)
        hi, lo = split_halves(matrix, shift)
        got = split_matmul(shift, hi, lo, operand, np.uint64(modulus))
        assert np.array_equal(got, _object_matmul(matrix, operand, modulus))

    @pytest.mark.parametrize("bits,inner", [(26, 1), (28, 64), (30, 128), (32, 16)])
    def test_adversarial_all_max_operands(self, bits, inner):
        """Every entry at q-1 drives the dot products to the budget edge and
        the uint64 recombination ``(hi % q) << shift + lo`` toward 2**63."""
        modulus = (1 << bits) - 5
        shift = split_shift(bits, bits, inner)
        assert shift is not None, "shape must be admissible for this test"
        matrix = np.full((4, inner), modulus - 1, dtype=np.uint64)
        operand = np.full((inner, 3), modulus - 1, dtype=np.uint64)
        hi, lo = split_halves(matrix, shift)
        got = split_matmul(shift, hi, lo, operand, np.uint64(modulus))
        assert np.array_equal(got, _object_matmul(matrix, operand, modulus))

    def test_batched_operand_broadcasting(self, rng):
        modulus = (1 << 28) - 57
        matrix = rng.integers(0, modulus, (5, 8), dtype=np.uint64)
        operand = rng.integers(0, modulus, (3, 8, 7), dtype=np.uint64)
        shift = split_shift(28, 28, 8)
        hi, lo = split_halves(matrix, shift)
        got = split_matmul(shift, hi, lo, operand, np.uint64(modulus))
        assert got.shape == (3, 5, 7)
        for batch in range(3):
            assert np.array_equal(
                got[batch], _object_matmul(matrix, operand[batch], modulus)
            )

    def test_split_matrix_bconv_contract(self, rng):
        """The BConv-facing wrapper derives its budget from the two bases."""
        source = (268369921, 268361729)
        target = (268271617, 268238849, 268217345)
        matrix = rng.integers(0, min(target), (3, 2), dtype=np.uint64)
        shift, hi, lo = split_matrix(matrix, source, target)
        assert shift is not None
        operand = np.stack(
            [rng.integers(0, q, 16, dtype=np.uint64) for q in source]
        )
        got = split_matmul(
            shift, hi, lo, operand, np.array(target, dtype=np.uint64)[:, None]
        )
        for j, p in enumerate(target):
            assert np.array_equal(got[j], _object_matmul(matrix, operand, p)[j])

    def test_asymmetric_widths_rejected_by_recombination_bound(self):
        """Regression: narrow operands against a much wider target modulus
        satisfy the dot-product bound but overflow the float recombination
        ``hi_reduced * 2**shift + lo``; split_shift must refuse the split so
        callers keep their exact integer paths."""
        assert split_shift(18, 36, 4) is None
        source = ((1 << 18) - 5, (1 << 18) - 11)
        target = ((1 << 36) - 5,)
        shift, hi, lo = split_matrix(
            np.ones((1, 2), dtype=np.uint64), source, target
        )
        assert shift is None

    def test_split_matrix_rejects_oversized(self):
        wide = ((1 << 40) + 1,)
        shift, hi, lo = split_matrix(
            np.ones((1, 1), dtype=np.uint64), wide, wide
        )
        assert shift is None and hi is None and lo is None


class TestLazyReduction:
    @given(
        bits=st.integers(4, 31),
        value_bits=st.integers(4, 52),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_lazy_window_and_congruence(self, bits, value_bits, seed):
        rng = np.random.default_rng(seed)
        modulus = int(rng.integers(1 << (bits - 1), 1 << bits)) | 1
        values = rng.integers(0, 1 << value_bits, 64, dtype=np.uint64)
        floats = values.astype(np.float64)
        q_f = np.float64(modulus)
        lazy_mod_reduce(floats, q_f, np.float64(1.0) / q_f)
        assert np.all(floats > -modulus)
        assert np.all(floats < 2 * modulus)
        reduced = np.mod(floats.astype(np.int64), modulus).astype(np.uint64)
        assert np.array_equal(reduced, values % np.uint64(modulus))

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_canonical_from_lazy(self, seed):
        rng = np.random.default_rng(seed)
        modulus = int(rng.integers(1 << 27, 1 << 28)) | 1
        values = rng.integers(0, 1 << 50, 128, dtype=np.uint64)
        got = canonical_from_lazy(
            values.astype(np.float64),
            np.float64(modulus),
            np.uint64(modulus),
            np.float64(1.0) / np.float64(modulus),
        )
        assert got.dtype == np.uint64
        assert np.all(got < modulus)
        assert np.array_equal(got, values % np.uint64(modulus))

    def test_exact_multiples_reduce_to_zero(self):
        modulus = (1 << 28) - 57
        values = (np.arange(1, 64, dtype=np.uint64) * np.uint64(modulus)).astype(
            np.float64
        )
        got = canonical_from_lazy(
            values,
            np.float64(modulus),
            np.uint64(modulus),
            np.float64(1.0) / np.float64(modulus),
        )
        assert np.all(got == 0)


class TestModularMatmulConvenience:
    def test_matches_chunked_kernel(self, rng):
        modulus = (1 << 28) - 57
        a = rng.integers(0, modulus, (9, 17), dtype=np.uint64)
        b = rng.integers(0, modulus, (17, 5), dtype=np.uint64)
        assert np.array_equal(
            modular_matmul(a, b, modulus), modmatmul(a, b, modulus)
        )

    def test_wide_modulus_falls_back_exactly(self, rng):
        # 31-bit modulus with a long inner dimension: no exact split exists,
        # so the chunked-integer fallback must carry the result.
        modulus = (1 << 31) - 1
        a = rng.integers(0, modulus, (4, 200), dtype=np.uint64)
        b = rng.integers(0, modulus, (200, 4), dtype=np.uint64)
        assert np.array_equal(
            modular_matmul(a, b, modulus), _object_matmul(a, b, modulus)
        )


class TestBlasStaging:
    def test_passthrough_when_staged(self, rng):
        staged = np.ascontiguousarray(rng.uniform(size=(4, 4)))
        assert as_blas_operand(staged) is staged

    def test_dtype_conversion_copies(self, rng):
        ints = rng.integers(0, 100, (4, 4), dtype=np.uint64)
        out = as_blas_operand(ints)
        assert out.dtype == np.float64 and out.flags.c_contiguous

    def test_strict_mode_flags_layout_copies(self, rng):
        previous = set_strict(True)
        try:
            assert is_strict()
            strided = np.ascontiguousarray(rng.uniform(size=(8, 8))).T
            with pytest.raises(AssertionError, match="layout copy"):
                as_blas_operand(strided, name="test operand")
            # dtype conversions of contiguous operands stay allowed
            ints = rng.integers(0, 100, (4, 4), dtype=np.uint64)
            assert as_blas_operand(ints).dtype == np.float64
        finally:
            set_strict(previous)

    def test_lax_mode_copies_silently(self, rng):
        previous = set_strict(False)
        try:
            strided = np.ascontiguousarray(rng.uniform(size=(8, 8))).T
            out = as_blas_operand(strided)
            assert out.flags.c_contiguous
            assert np.array_equal(out, strided)
        finally:
            set_strict(previous)

    def test_keep_dtype_staging(self, rng):
        ints = rng.integers(0, 100, (4, 4), dtype=np.uint64)
        assert as_blas_operand(ints, dtype=None) is ints

    def test_hot_paths_are_layout_clean(self, rng):
        """BConv and the four-step backend never trigger a layout copy."""
        from repro.numtheory.crt import RnsBasis
        from repro.poly.basis_conversion import conversion_for
        from repro.poly.ntt_engine import plan_stack_for

        previous = set_strict(True)
        try:
            basis = RnsBasis.generate(3, 28, 64)
            target = RnsBasis.generate(2, 28, 64)
            conv = conversion_for(basis, target)
            residues = np.stack(
                [rng.integers(0, q, 64, dtype=np.uint64) for q in basis.moduli]
            )
            conv.convert_residues(residues)
            stack = plan_stack_for(basis.moduli, 64)
            stack.four_step_stack().transform(residues, True)
        finally:
            set_strict(previous)
