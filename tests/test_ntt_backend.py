"""Backend-dispatch and four-step GEMM tests for the NTT engine.

The engine now fronts four bit-exact backends (butterfly, four_step, fused,
reference) behind one dispatch layer.  This suite pins down

* cross-backend bit-exactness against the `ntt_reference` oracle over random
  rings across the full supported degree sweep (including hypothesis
  round-trips),
* the wide-modulus story: ``q >= 2**30`` rides four_step where its split is
  exact and falls back to reference where it is not -- dispatch never
  selects an inexact backend,
* the env/default override surface, and
* the normalized transform accounting (passes *and* limb passes), which is
  what makes the fused key switch's "1 fwd + 1 inv" claim assertable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory.crt import RnsBasis
from repro.numtheory.modular import primitive_nth_root_of_unity
from repro.numtheory.primes import generate_ntt_prime
from repro.poly.ntt_engine import (
    BACKEND_AUTO,
    BACKEND_BUTTERFLY,
    BACKEND_FOUR_STEP,
    BACKEND_FUSED,
    BACKEND_REFERENCE,
    BACKENDS,
    MAX_PLAN_MODULUS,
    FourStepTables,
    fused_supported,
    NttPlan,
    NttPlanStack,
    four_step_split,
    four_step_supported,
    plan_for,
    plan_stack_for,
    requested_backend,
    reset_calibration,
    reset_transform_counts,
    resolve_backend,
    set_default_backend,
    supports,
    transform_counts,
)
from repro.poly.ntt_reference import (
    ntt_forward_negacyclic,
    ntt_inverse_negacyclic,
)

SWEEP_DEGREES = [2**4, 2**5, 2**6, 2**7, 2**8, 2**10, 2**12, 2**13]


def _plan_with_backend(degree: int, modulus: int, backend: str) -> NttPlan:
    psi = primitive_nth_root_of_unity(2 * degree, modulus)
    return NttPlan(degree=degree, modulus=modulus, psi=psi, backend=backend)


class TestFourStepSplit:
    def test_near_square_factorisation(self):
        for degree in SWEEP_DEGREES:
            rows, cols = four_step_split(degree)
            assert rows * cols == degree
            assert rows in (cols, 2 * cols)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            four_step_split(48)


class TestCrossBackendBitExactness:
    @pytest.mark.parametrize("degree", SWEEP_DEGREES)
    def test_word_sized_ring_all_backends_agree(self, degree, rng):
        basis = RnsBasis.generate(1, 28, degree)
        q = basis.moduli[0]
        x = rng.integers(0, q, degree, dtype=np.uint64)
        reference = _plan_with_backend(degree, q, BACKEND_REFERENCE)
        expected_fwd = ntt_forward_negacyclic(x, q, reference.psi)
        expected_inv = ntt_inverse_negacyclic(x, q, reference.psi)
        for backend in BACKENDS:
            plan = _plan_with_backend(degree, q, backend)
            assert plan.resolve_backend() == backend
            assert np.array_equal(plan.forward(x), expected_fwd), backend
            assert np.array_equal(plan.inverse(x), expected_inv), backend

    @pytest.mark.parametrize("degree", [2**4, 2**6, 2**8, 2**12])
    def test_stacked_ring_cross_backend(self, degree, rng):
        basis = RnsBasis.generate(3, 28, degree)
        matrix = np.stack(
            [rng.integers(0, q, degree, dtype=np.uint64) for q in basis.moduli]
        )
        plans = tuple(plan_for(degree, q) for q in basis.moduli)
        outputs = {}
        for backend in BACKENDS:
            stack = NttPlanStack(plans, backend=backend)
            assert stack.resolve_backend() == backend
            outputs[backend] = stack.forward(matrix)
            assert np.array_equal(stack.inverse(outputs[backend]), matrix)
        assert np.array_equal(outputs[BACKEND_BUTTERFLY], outputs[BACKEND_FOUR_STEP])
        assert np.array_equal(outputs[BACKEND_BUTTERFLY], outputs[BACKEND_FUSED])
        assert np.array_equal(outputs[BACKEND_BUTTERFLY], outputs[BACKEND_REFERENCE])

    @given(
        log_degree=st.integers(4, 13),
        bits=st.integers(14, 29),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_roundtrip_and_oracle(self, log_degree, bits, seed):
        degree = 1 << log_degree
        bits = max(bits, log_degree + 2)
        rng = np.random.default_rng(seed)
        try:
            q = generate_ntt_prime(bits, degree)
        except ValueError:
            return  # no NTT-friendly prime at this (bits, degree) cell
        psi = primitive_nth_root_of_unity(2 * degree, q)
        tables = FourStepTables(degree, q, psi)
        if not tables.exact:
            assert not four_step_supported(degree, (q,))
            return
        x = rng.integers(0, q, degree, dtype=np.uint64)
        fwd = tables.forward(x)
        assert np.array_equal(fwd, ntt_forward_negacyclic(x, q, psi))
        assert np.array_equal(tables.inverse(fwd), x)

    def test_mixed_width_stack_bit_exact(self, rng):
        """Regression: a stack mixing modulus widths must re-split every
        limb's matrices at the stack-wide (widest) shift — splitting a wide
        limb with a narrow limb's shift silently overflows the GEMM budget."""
        degree = 2**12
        narrow = generate_ntt_prime(17, degree)
        wide = generate_ntt_prime(30, degree)
        plans = tuple(plan_for(degree, q) for q in (narrow, wide))
        stack = NttPlanStack(plans, backend=BACKEND_FOUR_STEP)
        assert four_step_supported(degree, (narrow, wide))
        matrix = np.stack(
            [rng.integers(0, q, degree, dtype=np.uint64) for q in (narrow, wide)]
        )
        got = stack.forward(matrix)
        for i, q in enumerate((narrow, wide)):
            assert np.array_equal(
                got[i], ntt_forward_negacyclic(matrix[i], q, plans[i].psi)
            ), q
        assert np.array_equal(stack.inverse(got), matrix)

    def test_unsupported_stack_refuses_four_step_tables(self):
        degree = 2**13
        prime = generate_ntt_prime(30, degree)
        plan = plan_for(degree, prime)
        assert not four_step_supported(degree, (prime,))
        stack = NttPlanStack((plan,))
        with pytest.raises(ValueError):
            stack.four_step_stack()

    def test_stacked_operands_ride_four_step(self, rng):
        basis = RnsBasis.generate(4, 28, 256)
        stack = NttPlanStack(
            tuple(plan_for(256, q) for q in basis.moduli), backend=BACKEND_FOUR_STEP
        )
        tensor = np.stack(
            [
                np.stack(
                    [rng.integers(0, q, 256, dtype=np.uint64) for q in basis.moduli]
                )
                for _ in range(3)
            ]
        )
        expected = NttPlanStack(stack.plans, backend=BACKEND_REFERENCE).forward(tensor)
        assert np.array_equal(stack.forward(tensor), expected)


class TestWideModulusDispatch:
    def test_wide_modulus_small_degree_uses_four_step(self, rng):
        prime = generate_ntt_prime(31, 64)
        assert prime >= MAX_PLAN_MODULUS
        assert four_step_supported(64, (prime,))
        assert resolve_backend(64, (prime,), requested=BACKEND_AUTO) == BACKEND_FOUR_STEP
        plan = plan_for(64, prime)
        assert not plan.butterfly_ok
        x = rng.integers(0, prime, 64, dtype=np.uint64)
        assert np.array_equal(
            plan.forward(x), ntt_forward_negacyclic(x, prime, plan.psi)
        )
        assert np.array_equal(plan.inverse(plan.forward(x)), x)

    def test_wide_modulus_large_degree_falls_back_to_reference(self):
        prime = generate_ntt_prime(31, 1 << 13)
        assert not four_step_supported(1 << 13, (prime,))
        assert not supports((prime,), 1 << 13)
        # An explicit four_step request must not produce an inexact backend.
        assert (
            resolve_backend(1 << 13, (prime,), requested=BACKEND_FOUR_STEP)
            == BACKEND_REFERENCE
        )

    def test_explicit_butterfly_on_wide_modulus_degrades_safely(self):
        prime = generate_ntt_prime(31, 64)
        choice = resolve_backend(64, (prime,), requested=BACKEND_BUTTERFLY)
        assert choice == BACKEND_REFERENCE

    @pytest.mark.parametrize("log_degree", range(2, 14))
    @pytest.mark.parametrize("bits", [20, 28, 30, 31, 32])
    def test_dispatch_never_selects_inexact_backend(self, log_degree, bits):
        """For every (degree, width) cell the resolved backend is exact."""
        degree = 1 << log_degree
        modulus = (1 << bits) - 1  # width witness; exactness is width-based
        for requested in (BACKEND_AUTO,) + BACKENDS:
            choice = resolve_backend(degree, (modulus,), requested=requested)
            if choice == BACKEND_BUTTERFLY:
                assert modulus < MAX_PLAN_MODULUS
            elif choice == BACKEND_FOUR_STEP:
                assert four_step_supported(degree, (modulus,))
            elif choice == BACKEND_FUSED:
                assert fused_supported(degree, (modulus,))
            else:
                assert choice == BACKEND_REFERENCE

    def test_inexact_tables_refuse(self):
        prime = generate_ntt_prime(31, 1 << 13)
        psi = primitive_nth_root_of_unity(1 << 14, prime)
        tables = FourStepTables(1 << 13, prime, psi)
        assert not tables.exact


class TestDispatchOverrides:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_BACKEND", "butterfly")
        assert requested_backend() == BACKEND_BUTTERFLY
        assert resolve_backend(64, (7681,)) == BACKEND_BUTTERFLY

    def test_env_override_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_BACKEND", "warp-drive")
        with pytest.raises(ValueError):
            requested_backend()

    def test_set_default_backend_roundtrip(self, monkeypatch):
        # The env pin outranks the process default; clear any matrix-leg pin.
        monkeypatch.delenv("REPRO_NTT_BACKEND", raising=False)
        previous = set_default_backend(BACKEND_BUTTERFLY)
        try:
            assert requested_backend() == BACKEND_BUTTERFLY
        finally:
            set_default_backend(previous)

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError):
            set_default_backend("nonsense")

    def test_plan_backend_attribute_pins(self, rng):
        basis = RnsBasis.generate(1, 24, 64)
        q = basis.moduli[0]
        plan = _plan_with_backend(64, q, BACKEND_BUTTERFLY)
        assert plan.resolve_backend() == BACKEND_BUTTERFLY
        with pytest.raises(ValueError):
            NttPlan(degree=64, modulus=q, psi=plan.psi, backend="bogus")

    def test_measured_calibration_caches_decision(self, monkeypatch):
        # Calibration only runs for auto dispatch; clear any matrix-leg pin.
        monkeypatch.delenv("REPRO_NTT_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_NTT_CALIBRATE", "measure")
        reset_calibration()
        try:
            basis = RnsBasis.generate(2, 24, 64)
            stack = plan_stack_for(basis.moduli, 64)
            choice = stack.resolve_backend()
            assert choice in (BACKEND_BUTTERFLY, BACKEND_FOUR_STEP, BACKEND_FUSED)
            from repro.poly.fused_kernels import active_mode
            from repro.poly.ntt_engine import calibration_cache

            assert (64, 2, 24, active_mode()) in calibration_cache()
            # Second resolution must reuse the memoised decision.
            assert stack.resolve_backend() == choice
        finally:
            reset_calibration()


class TestNormalizedAccounting:
    def test_stack_counts_passes_and_limb_rows(self, rng):
        basis = RnsBasis.generate(3, 24, 32)
        stack = plan_stack_for(basis.moduli, 32)
        matrix = np.stack(
            [rng.integers(0, q, 32, dtype=np.uint64) for q in basis.moduli]
        )
        reset_transform_counts()
        stack.forward(matrix)
        counts = transform_counts()
        assert counts["forward"] == 1
        assert counts["forward_limbs"] == 3

    def test_stacked_operand_books_per_limb_rows(self, rng):
        """Regression: a stacked (B, L, N) call is one pass but B*L limb rows."""
        basis = RnsBasis.generate(3, 24, 32)
        stack = plan_stack_for(basis.moduli, 32)
        tensor = np.stack(
            [
                np.stack(
                    [rng.integers(0, q, 32, dtype=np.uint64) for q in basis.moduli]
                )
                for _ in range(5)
            ]
        )
        reset_transform_counts()
        stack.inverse(tensor)
        counts = transform_counts()
        assert counts["inverse"] == 1
        assert counts["inverse_limbs"] == 5 * 3

    def test_plan_counts_rows(self, rng):
        basis = RnsBasis.generate(1, 24, 32)
        plan = plan_for(32, basis.moduli[0])
        batch = rng.integers(0, basis.moduli[0], (4, 32), dtype=np.uint64)
        reset_transform_counts()
        plan.forward(batch)
        plan.forward(batch[0])
        counts = transform_counts()
        assert counts["forward"] == 2
        assert counts["forward_limbs"] == 4 + 1

    def test_reset_clears_all_keys(self):
        reset_transform_counts()
        counts = transform_counts()
        assert set(counts) == {
            "forward",
            "inverse",
            "forward_limbs",
            "inverse_limbs",
        }
        assert all(value == 0 for value in counts.values())
