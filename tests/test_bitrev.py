"""Tests for bit-reversal and permutation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory.bitrev import (
    bit_reverse_indices,
    bit_reverse_permute,
    bit_reverse_value,
    invert_permutation,
    is_power_of_two,
    permutation_matrix,
    stride_permutation_indices,
)


class TestPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(20))

    def test_non_powers(self):
        assert not any(is_power_of_two(n) for n in (0, 3, 6, 12, 100, -8))


class TestBitReverse:
    def test_value(self):
        assert bit_reverse_value(0b001, 3) == 0b100
        assert bit_reverse_value(0b110, 3) == 0b011
        assert bit_reverse_value(5, 4) == 10

    def test_indices_involution(self):
        indices = bit_reverse_indices(64)
        assert np.array_equal(indices[indices], np.arange(64))

    def test_indices_is_permutation(self):
        indices = bit_reverse_indices(32)
        assert sorted(indices.tolist()) == list(range(32))

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)

    def test_permute_roundtrip(self, rng):
        values = rng.integers(0, 100, size=128)
        assert np.array_equal(bit_reverse_permute(bit_reverse_permute(values)), values)

    @given(bits=st.integers(min_value=1, max_value=12), value=st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_property_double_reverse(self, bits, value):
        value = value % (1 << bits)
        assert bit_reverse_value(bit_reverse_value(value, bits), bits) == value


class TestPermutationMatrix:
    def test_matrix_applies_permutation(self, rng):
        indices = rng.permutation(16)
        matrix = permutation_matrix(indices)
        x = rng.integers(0, 100, size=16)
        assert np.array_equal(matrix @ x, x[indices])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix(np.array([0, 0, 1]))

    def test_invert_permutation(self, rng):
        indices = rng.permutation(33)
        inverse = invert_permutation(indices)
        assert np.array_equal(indices[inverse], np.arange(33))
        assert np.array_equal(inverse[indices], np.arange(33))


class TestStridePermutation:
    @pytest.mark.parametrize("rows,cols", [(4, 8), (8, 4), (16, 16), (2, 32)])
    def test_matches_transpose(self, rows, cols, rng):
        values = rng.integers(0, 1000, size=rows * cols)
        perm = stride_permutation_indices(rows, cols)
        expected = values.reshape(rows, cols).T.reshape(-1)
        assert np.array_equal(values[perm], expected)
