"""Tests for the table/figure formatting helpers."""

from repro.analysis import format_breakdown, format_table, ratio_string, side_by_side


class TestFormatTable:
    def test_basic_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 10000.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "10,000" in text

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["much longer cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("much longer cell")


class TestRatioAndSideBySide:
    def test_ratio(self):
        assert ratio_string(2.0, 1.0) == "2.00x"
        assert ratio_string(1.0, 0.0) == "n/a"

    def test_side_by_side_contains_values(self):
        line = side_by_side("HE-Mult", 100.0, 150.0, unit="us")
        assert "HE-Mult" in line and "1.50x" in line


class TestFormatBreakdown:
    def test_sorted_by_share(self):
        text = format_breakdown({"A": 0.2, "B": 0.8}, title="bd")
        lines = text.splitlines()
        assert lines[0] == "bd"
        assert lines[1].strip().startswith("B")
        assert "80.0%" in lines[1]
