"""Tests for schoolbook negacyclic arithmetic (the exactness oracle itself)."""

import numpy as np
import pytest

from repro.poly.negacyclic import (
    negacyclic_convolve,
    poly_add,
    poly_negate,
    poly_scalar_mul,
    poly_sub,
)


class TestElementwise:
    def test_add_sub_inverse(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert np.array_equal(poly_sub(poly_add(a, b, ring.modulus), b, ring.modulus), a)

    def test_negate(self, ring, rng):
        a = ring.random_uniform(rng)
        zero = poly_add(a, poly_negate(a, ring.modulus), ring.modulus)
        assert np.all(zero == 0)

    def test_negate_zero(self, ring):
        zero = ring.zeros()
        assert np.all(poly_negate(zero, ring.modulus) == 0)

    def test_scalar_mul(self, ring, rng):
        a = ring.random_uniform(rng)
        doubled = poly_scalar_mul(a, 2, ring.modulus)
        assert np.array_equal(doubled, poly_add(a, a, ring.modulus))

    def test_scalar_mul_large_scalar(self, ring):
        a = np.array([1] * ring.degree, dtype=np.uint64)
        scalar = ring.modulus * 3 + 5
        assert np.array_equal(
            poly_scalar_mul(a, scalar, ring.modulus),
            np.full(ring.degree, 5, dtype=np.uint64),
        )


class TestNegacyclicConvolve:
    def test_multiply_by_one(self, ring, rng):
        a = ring.random_uniform(rng)
        one = ring.zeros()
        one[0] = 1
        assert np.array_equal(negacyclic_convolve(a, one, ring.modulus), a)

    def test_multiply_by_x_wraps_negatively(self, ring):
        # x^(N-1) * x = x^N = -1.
        a = ring.zeros()
        a[ring.degree - 1] = 1
        x = ring.zeros()
        x[1] = 1
        product = negacyclic_convolve(a, x, ring.modulus)
        expected = ring.zeros()
        expected[0] = ring.modulus - 1
        assert np.array_equal(product, expected)

    def test_commutativity(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert np.array_equal(
            negacyclic_convolve(a, b, ring.modulus),
            negacyclic_convolve(b, a, ring.modulus),
        )

    def test_distributivity(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        c = ring.random_uniform(rng)
        left = negacyclic_convolve(a, poly_add(b, c, ring.modulus), ring.modulus)
        right = poly_add(
            negacyclic_convolve(a, b, ring.modulus),
            negacyclic_convolve(a, c, ring.modulus),
            ring.modulus,
        )
        assert np.array_equal(left, right)

    def test_length_mismatch(self, ring):
        with pytest.raises(ValueError):
            negacyclic_convolve(np.zeros(4), np.zeros(8), ring.modulus)

    def test_known_small_case(self):
        # (1 + x) * (1 + x) = 1 + 2x + x^2 in Z_17[x]/(x^4+1).
        a = np.array([1, 1, 0, 0], dtype=np.uint64)
        product = negacyclic_convolve(a, a, 17)
        assert product.tolist() == [1, 2, 1, 0]
