"""End-to-end tests for the CKKS evaluator (HE-Add/Mult/Rescale/Rotate)."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def env(ckks_setup, rng):
    params = ckks_setup["params"]
    slots = params.slot_count
    z1 = rng.uniform(-1, 1, slots) + 1j * rng.uniform(-1, 1, slots)
    z2 = rng.uniform(-1, 1, slots) + 1j * rng.uniform(-1, 1, slots)
    encoder = ckks_setup["encoder"]
    encryptor = ckks_setup["encryptor"]
    ct1 = encryptor.encrypt(encoder.encode(z1))
    ct2 = encryptor.encrypt(encoder.encode(z2))
    return {**ckks_setup, "z1": z1, "z2": z2, "ct1": ct1, "ct2": ct2}


def decrypt_decode(env, ciphertext):
    return env["encoder"].decode(env["decryptor"].decrypt(ciphertext))


class TestEncryptionRoundtrip:
    def test_decrypt_fresh(self, env):
        assert np.abs(decrypt_decode(env, env["ct1"]) - env["z1"]).max() < 1e-2

    def test_fresh_ciphertext_is_linear(self, env):
        assert env["ct1"].is_linear
        assert env["ct1"].level == env["params"].limbs


class TestAdditiveOperators:
    def test_add(self, env):
        result = env["evaluator"].add(env["ct1"], env["ct2"])
        assert np.abs(decrypt_decode(env, result) - (env["z1"] + env["z2"])).max() < 1e-2

    def test_sub(self, env):
        result = env["evaluator"].sub(env["ct1"], env["ct2"])
        assert np.abs(decrypt_decode(env, result) - (env["z1"] - env["z2"])).max() < 1e-2

    def test_add_plain(self, env):
        plain = env["encoder"].encode(env["z2"])
        result = env["evaluator"].add_plain(env["ct1"], plain)
        assert np.abs(decrypt_decode(env, result) - (env["z1"] + env["z2"])).max() < 1e-2

    def test_level_mismatch_rejected(self, env):
        lowered = env["evaluator"].level_down(env["ct1"])
        with pytest.raises(ValueError):
            env["evaluator"].add(lowered, env["ct2"])


class TestMultiplicativeOperators:
    def test_multiply_with_relinearisation(self, env):
        product = env["evaluator"].multiply(env["ct1"], env["ct2"])
        assert product.is_linear
        expected = env["z1"] * env["z2"]
        assert np.abs(decrypt_decode(env, product) - expected).max() < 5e-2

    def test_multiply_without_relinearisation(self, env):
        product = env["evaluator"].multiply(env["ct1"], env["ct2"], relinearize=False)
        assert not product.is_linear
        expected = env["z1"] * env["z2"]
        assert np.abs(decrypt_decode(env, product) - expected).max() < 5e-2

    def test_multiply_plain(self, env):
        plain = env["encoder"].encode(env["z2"])
        product = env["evaluator"].multiply_plain(env["ct1"], plain)
        expected = env["z1"] * env["z2"]
        assert np.abs(decrypt_decode(env, product) - expected).max() < 5e-2

    def test_square(self, env):
        squared = env["evaluator"].square(env["ct1"])
        assert np.abs(decrypt_decode(env, squared) - env["z1"] ** 2).max() < 5e-2

    def test_relinearize_without_key(self, env):
        from repro.ckks.evaluator import CkksEvaluator

        bare = CkksEvaluator(env["params"])
        product = env["evaluator"].multiply(env["ct1"], env["ct2"], relinearize=False)
        with pytest.raises(ValueError):
            bare.relinearize(product)

    def test_scale_grows_multiplicatively(self, env):
        product = env["evaluator"].multiply(env["ct1"], env["ct2"])
        assert product.scale == pytest.approx(env["ct1"].scale * env["ct2"].scale)


class TestRescale:
    def test_rescale_preserves_value(self, env):
        product = env["evaluator"].multiply(env["ct1"], env["ct2"])
        rescaled = env["evaluator"].rescale(product)
        assert rescaled.level == product.level - 1
        assert rescaled.scale < product.scale
        expected = env["z1"] * env["z2"]
        assert np.abs(decrypt_decode(env, rescaled) - expected).max() < 5e-2

    def test_rescale_at_bottom_rejected(self, env):
        ct = env["evaluator"].level_down(env["ct1"], env["ct1"].level - 1)
        with pytest.raises(ValueError):
            env["evaluator"].rescale(ct)

    def test_level_down(self, env):
        lowered = env["evaluator"].level_down(env["ct1"])
        assert lowered.level == env["ct1"].level - 1
        assert np.abs(decrypt_decode(env, lowered) - env["z1"]).max() < 1e-2


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 2])
    def test_rotate(self, env, steps):
        rotated = env["evaluator"].rotate(env["ct1"], steps)
        expected = np.roll(env["z1"], -steps)
        assert np.abs(decrypt_decode(env, rotated) - expected).max() < 1e-2

    def test_conjugate(self, env):
        conjugated = env["evaluator"].conjugate(env["ct1"])
        assert np.abs(decrypt_decode(env, conjugated) - np.conj(env["z1"])).max() < 1e-2

    def test_rotate_without_keys(self, env):
        from repro.ckks.evaluator import CkksEvaluator

        bare = CkksEvaluator(env["params"], relin_key=env["evaluator"].relin_key)
        with pytest.raises(ValueError):
            bare.rotate(env["ct1"], 1)

    def test_missing_rotation_step(self, env):
        with pytest.raises(KeyError):
            env["evaluator"].rotate(env["ct1"], 7)


class TestComposedCircuits:
    def test_mult_then_add(self, env):
        ev = env["evaluator"]
        result = ev.add(
            ev.rescale(ev.multiply(env["ct1"], env["ct2"])),
            ev.rescale(ev.multiply(env["ct2"], env["ct1"])),
        )
        expected = 2 * env["z1"] * env["z2"]
        assert np.abs(decrypt_decode(env, result) - expected).max() < 0.1

    def test_rotate_then_multiply(self, env):
        ev = env["evaluator"]
        rotated = ev.rotate(env["ct1"], 1)
        product = ev.multiply(rotated, env["ct2"])
        expected = np.roll(env["z1"], -1) * env["z2"]
        assert np.abs(decrypt_decode(env, product) - expected).max() < 5e-2

    def test_depth_two_circuit(self, env):
        """(z1*z2) * z1 across two levels with rescaling in between."""
        ev = env["evaluator"]
        first = ev.rescale(ev.multiply(env["ct1"], env["ct2"]))
        ct1_lowered = ev.level_down(env["ct1"], env["ct1"].level - first.level)
        second = ev.multiply(first, ct1_lowered)
        expected = env["z1"] ** 2 * env["z2"]
        assert np.abs(decrypt_decode(env, second) - expected).max() < 0.2
