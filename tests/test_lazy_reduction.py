"""Tests for BAT lazy modular reduction (paper Appendix J)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lazy_reduction import LazyReductionPlan, lazy_reduce, lazy_reduce_exact
from repro.numtheory.primes import generate_ntt_prime

Q = generate_ntt_prime(28, 4096)


@pytest.fixture(scope="module")
def plan():
    return LazyReductionPlan.create(Q)


class TestPlan:
    def test_constants(self, plan):
        for j, constant in enumerate(plan.low_constants):
            assert int(constant) == pow(2, (j + 4) * 8, Q)

    def test_constant_chunks_reconstruct(self, plan):
        for j in range(plan.num_chunks):
            merged = sum(
                int(plan.low_constant_chunks[j, k]) << (8 * k)
                for k in range(plan.num_chunks)
            )
            assert merged == int(plan.low_constants[j])

    def test_rejects_wide_modulus(self):
        with pytest.raises(ValueError):
            LazyReductionPlan.create(1 << 33)

    def test_output_bound_formula(self, plan):
        assert plan.output_bound == (1 << 32) + 4 * 255 * (Q - 1)


class TestLazyReduce:
    def test_congruence_and_bound(self, plan, rng):
        values = rng.integers(0, 1 << 63, size=2000, dtype=np.uint64)
        reduced = lazy_reduce(values, plan)
        assert np.all(
            (reduced.astype(object) - values.astype(object)) % Q == 0
        )
        assert int(reduced.max()) <= plan.output_bound

    def test_matrix_and_direct_forms_agree(self, plan, rng):
        values = rng.integers(0, 1 << 62, size=500, dtype=np.uint64)
        matrix_form = lazy_reduce(values, plan, use_matrix=True)
        direct_form = lazy_reduce(values, plan, use_matrix=False)
        assert np.array_equal(matrix_form, direct_form)

    def test_multiple_passes_shrink(self, plan, rng):
        values = rng.integers(1 << 60, 1 << 63, size=200, dtype=np.uint64)
        one_pass = lazy_reduce(values, plan, passes=1)
        two_pass = lazy_reduce(values, plan, passes=2)
        assert int(two_pass.max()) <= int(one_pass.max())
        assert np.all((two_pass.astype(object) - values.astype(object)) % Q == 0)

    def test_small_values_untouched(self, plan):
        values = np.array([0, 1, Q - 1, (1 << 32) - 1], dtype=np.uint64)
        assert np.array_equal(lazy_reduce(values, plan), values)

    def test_exact_variant(self, plan, rng):
        values = rng.integers(0, 1 << 63, size=1000, dtype=np.uint64)
        expected = np.array([int(v) % Q for v in values], dtype=np.uint64)
        assert np.array_equal(lazy_reduce_exact(values, plan), expected)

    @given(value=st.integers(min_value=0, max_value=(1 << 63) - 1))
    @settings(max_examples=150, deadline=None)
    def test_property_congruence(self, value):
        plan = LazyReductionPlan.create(Q)
        reduced = int(lazy_reduce(np.array([value], dtype=np.uint64), plan)[0])
        assert reduced % Q == value % Q
        assert reduced <= plan.output_bound
