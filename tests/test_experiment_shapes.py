"""Shape tests: the simulated evaluation must reproduce the paper's qualitative results.

These are not unit tests of a single module; they assert the *relative*
behaviour each paper table/figure reports (who wins, roughly by how much,
where the bottleneck sits), which is the reproduction target stated in
DESIGN.md.
"""

import pytest

from repro.baselines.gpu_flow import bat_matmul_graph, sparse_matmul_graph
from repro.ckks.bootstrapping import estimate_bootstrapping
from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.core.kernel_ir import Category
from repro.perf import TABLE5_BAT_MATMUL, TABLE6_BCONV
from repro.tpu import TensorCoreDevice, TpuVirtualMachine

SET_D = PARAMETER_SETS["D"]


@pytest.fixture(scope="module")
def device():
    return TensorCoreDevice.for_generation("TPUv6e")


@pytest.fixture(scope="module")
def cross():
    return CrossCompiler(SET_D, CompilerOptions.cross_default())


@pytest.fixture(scope="module")
def baseline():
    return CrossCompiler(SET_D, CompilerOptions.gpu_baseline())


class TestTable5Shape:
    """BAT beats the sparse baseline on every ModMatMul size, by 1.1x - 2.5x."""

    @pytest.mark.parametrize("h,v,w,paper_baseline,paper_bat", TABLE5_BAT_MATMUL)
    def test_bat_speedup_in_range(self, device, h, v, w, paper_baseline, paper_bat):
        baseline_latency = device.latency(sparse_matmul_graph(h, v, w))
        bat_latency = device.latency(bat_matmul_graph(h, v, w))
        speedup = baseline_latency / bat_latency
        paper_speedup = paper_baseline / paper_bat
        assert speedup > 1.0
        assert speedup == pytest.approx(paper_speedup, rel=0.6)


class TestTable6Shape:
    """BAT turns BConv's step 2 into an MXU matmul: multi-x speedups, growing with limbs."""

    @pytest.mark.parametrize("limbs_in,limbs_out,paper_baseline,paper_bat", TABLE6_BCONV)
    def test_bconv_speedup(self, device, limbs_in, limbs_out, paper_baseline, paper_bat):
        vpu_compiler = CrossCompiler(
            SET_D, CompilerOptions(use_bat=False, use_mat=True, sparse_fallback=False)
        )
        bat_compiler = CrossCompiler(SET_D, CompilerOptions.cross_default())
        baseline_latency = device.latency(vpu_compiler.bconv(limbs_in, limbs_out))
        bat_latency = device.latency(bat_compiler.bconv(limbs_in, limbs_out))
        assert baseline_latency / bat_latency > 2.0

    def test_speedup_grows_with_limb_count(self, device):
        vpu_compiler = CrossCompiler(
            SET_D, CompilerOptions(use_bat=False, use_mat=True, sparse_fallback=False)
        )
        bat_compiler = CrossCompiler(SET_D, CompilerOptions.cross_default())

        def speedup(limbs_in, limbs_out):
            return device.latency(vpu_compiler.bconv(limbs_in, limbs_out)) / device.latency(
                bat_compiler.bconv(limbs_in, limbs_out)
            )

        assert speedup(24, 56) > speedup(12, 28)


class TestTable7Fig11Shape:
    """NTT throughput rises with newer TPU generations and falls with degree."""

    def test_generation_ordering(self):
        throughputs = {}
        for generation, cores in [("TPUv4", 4), ("TPUv5e", 4), ("TPUv5p", 4), ("TPUv6e", 8)]:
            compiler = CrossCompiler(PARAMETER_SETS["A"], CompilerOptions.cross_default())
            vm = TpuVirtualMachine(generation, cores)
            graph = compiler.ntt(limbs=1, batch=16)
            throughputs[generation] = 16 * vm.tensor_cores / vm.core.latency(graph)
        assert throughputs["TPUv6e"] > throughputs["TPUv5p"] >= throughputs["TPUv5e"]

    def test_degree_scaling(self, device):
        def throughput(set_name):
            compiler = CrossCompiler(PARAMETER_SETS[set_name], CompilerOptions.cross_default())
            graph = compiler.ntt(limbs=1, batch=16)
            return 16 / device.latency(graph)

        assert throughput("A") > throughput("B") > throughput("C")

    def test_cross_ntt_beats_gpu_flow_on_tpu(self):
        """Table X's point: the radix-2 CT flow is far slower than MAT NTT on TPUv4."""
        tpu_v4 = TensorCoreDevice.for_generation("TPUv4")
        cross = CrossCompiler(PARAMETER_SETS["C"], CompilerOptions.cross_default())
        radix2 = CrossCompiler(PARAMETER_SETS["C"], CompilerOptions.vpu_only_baseline())
        speedup = tpu_v4.latency(radix2.ntt(limbs=1, batch=128)) / tpu_v4.latency(
            cross.ntt(limbs=1, batch=128)
        )
        assert speedup > 5.0


class TestTable8Shape:
    """HE operator ordering and CROSS-vs-baseline speedups."""

    def test_operator_ordering(self, cross, device):
        latencies = {
            name: device.latency(cross.operator(name))
            for name in ("he_add", "rescale", "rotate", "he_mult")
        }
        assert latencies["he_add"] < latencies["rescale"] < latencies["rotate"]
        assert latencies["rescale"] < latencies["he_mult"]

    def test_cross_beats_gpu_baseline_on_every_operator(self, cross, baseline, device):
        for name in ("he_mult", "rescale", "rotate"):
            assert device.latency(baseline.operator(name)) > device.latency(
                cross.operator(name)
            )

    def test_single_tc_he_mult_magnitude(self, cross, device):
        """Set D HE-Mult on one v6e tensor core lands in the paper's millisecond regime."""
        latency_us = device.latency(cross.he_mult()) * 1e6
        assert 200 < latency_us < 20_000


class TestFig12Shape:
    """HE-Mult is VPU-bound; matmuls contribute a minority of the latency."""

    def test_vecmodops_dominate(self, cross, device):
        fractions = {
            category.value: share
            for category, share in device.run(cross.he_mult()).category_fractions().items()
        }
        matmul_share = (
            fractions.get(Category.NTT_MATMUL.value, 0)
            + fractions.get(Category.INTT_MATMUL.value, 0)
            + fractions.get(Category.BCONV_MATMUL.value, 0)
        )
        assert fractions[Category.VEC_MOD_OPS.value] > matmul_share
        assert fractions[Category.VEC_MOD_OPS.value] > 0.35

    def test_rotate_has_permutation_cost(self, cross, device):
        fractions = {
            category.value: share
            for category, share in device.run(cross.rotate()).category_fractions().items()
        }
        assert fractions.get(Category.AUTOMORPHISM.value, 0) > 0.01


class TestTable9Shape:
    """Bootstrapping: tens of milliseconds on v6e-8, automorphism-heavy."""

    def test_latency_magnitude_and_breakdown(self, cross, device):
        estimate = estimate_bootstrapping(cross, device, tensor_cores=8)
        assert 3 < estimate.latency_ms < 1000
        assert estimate.breakdown.get("Automorphism", 0) > 0.02


class TestEnergyEfficiencyShape:
    """CROSS on power-matched TPUv6e is more efficient than every public baseline."""

    @pytest.mark.parametrize("name", ["OpenFHE", "WarpDrive", "FIDESlib", "FAB"])
    def test_beats_baseline(self, cross, name):
        from repro.perf import TABLE8_BASELINES, compare_efficiency

        record = TABLE8_BASELINES[name]
        compiler = CrossCompiler(
            SET_D if record.cross_limbs >= 36 else PARAMETER_SETS["B"],
            CompilerOptions.cross_default(),
        )
        result = compare_efficiency(
            record.name,
            record.he_mult_us,
            record.platform_power_watts,
            compiler.he_mult(limbs=min(record.cross_limbs, 51)),
            tensor_cores=record.tpu_power_match_cores,
        )
        assert result.efficiency_gain > 0.5  # at least competitive ...
        if name == "OpenFHE":
            assert result.efficiency_gain > 50  # ... and dominant over the CPU library
