"""Tests for the 4-step NTT baseline (explicit transpose)."""

import numpy as np
import pytest

from repro.poly.ntt_fourstep import FourStepNttPlan, _modular_matrix_inverse
from repro.poly.ntt_reference import ntt_forward_negacyclic


@pytest.fixture(scope="module", params=[(8, 8), (4, 16), (16, 4)])
def plan(request, ring):
    rows, cols = request.param
    return FourStepNttPlan(
        degree=ring.degree, modulus=ring.modulus, psi=ring.psi, rows=rows, cols=cols
    )


class TestFourStep:
    def test_matches_reference(self, plan, ring, rng):
        a = ring.random_uniform(rng)
        assert np.array_equal(plan.forward(a), ring.ntt(a))

    def test_inverse_roundtrip(self, plan, ring, rng):
        a = ring.random_uniform(rng)
        assert np.array_equal(plan.inverse(plan.forward(a)), a)

    def test_zero_and_constant(self, plan, ring):
        zero = ring.zeros()
        assert np.all(plan.forward(zero) == 0)
        const = ring.zeros()
        const[0] = 5
        assert np.all(plan.forward(const) == 5)

    def test_shape_validation(self, ring):
        with pytest.raises(ValueError):
            FourStepNttPlan(
                degree=ring.degree, modulus=ring.modulus, psi=ring.psi, rows=8, cols=16
            )

    def test_linearity(self, plan, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        lhs = plan.forward(ring.add(a, b))
        rhs = ring.add(plan.forward(a), plan.forward(b))
        assert np.array_equal(lhs, rhs)


class TestModularMatrixInverse:
    def test_inverse_of_identity(self):
        identity = np.eye(5, dtype=np.uint64)
        assert np.array_equal(_modular_matrix_inverse(identity, 97), identity)

    def test_inverse_property(self, rng):
        from repro.poly.modmat import modmatmul

        q = 97
        while True:
            matrix = rng.integers(0, q, size=(6, 6), dtype=np.uint64)
            try:
                inverse = _modular_matrix_inverse(matrix, q)
                break
            except ValueError:
                continue
        product = modmatmul(matrix, inverse, q)
        assert np.array_equal(product, np.eye(6, dtype=np.uint64))

    def test_singular_rejected(self):
        singular = np.zeros((3, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            _modular_matrix_inverse(singular, 97)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            _modular_matrix_inverse(np.zeros((2, 3), dtype=np.uint64), 97)
