"""Tests for the simulated TPU: specs, functional units, memory, device model."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.core.kernel_ir import (
    Category,
    Engine,
    KernelGraph,
    MatMulOp,
    MemoryOp,
    PermuteOp,
    TypeConvertOp,
    VectorOp,
)
from repro.tpu import (
    COMPARISON_DEVICES,
    TPU_TENSOR_CORES,
    CostModelConfig,
    CrossLaneUnit,
    MatrixUnit,
    MemoryHierarchy,
    MxuPrecisionError,
    TensorCoreDevice,
    TpuVirtualMachine,
    VectorUnit,
    comparison_device,
    tensor_core,
)


class TestSpecs:
    def test_all_generations_present(self):
        assert set(TPU_TENSOR_CORES) == {"TPUv4", "TPUv5e", "TPUv5p", "TPUv6e"}

    def test_monotonic_compute(self):
        ordered = ["TPUv4", "TPUv5e", "TPUv5p", "TPUv6e"]
        peaks = [TPU_TENSOR_CORES[g].mxu_ops_per_second for g in ordered]
        assert peaks == sorted(peaks)

    def test_v6e_has_larger_mxu(self):
        assert TPU_TENSOR_CORES["TPUv6e"].mxu_systolic_dim == 256
        assert TPU_TENSOR_CORES["TPUv4"].mxu_systolic_dim == 128

    def test_vreg_size_is_4kb(self):
        assert tensor_core("TPUv4").vreg_bytes == 4096

    def test_vpu_throughput_formula(self):
        spec = tensor_core("TPUv4")
        assert spec.vpu_ops_per_second == 128 * 8 * 2 * spec.clock_hz

    def test_unknown_generation(self):
        with pytest.raises(KeyError):
            tensor_core("TPUv99")

    def test_comparison_devices(self):
        assert comparison_device("NVIDIA A100").tdp_watts == 400
        assert comparison_device("AMD Alveo U280").category == "FPGA"
        with pytest.raises(KeyError):
            comparison_device("Abacus")

    def test_fig5_ai_asics_most_efficient(self):
        """Fig. 5 claim: AI ASICs sit on the best TOPs/W frontier of their node."""
        v6e = COMPARISON_DEVICES["TPUv6e"]
        a100 = COMPARISON_DEVICES["NVIDIA A100"]
        u280 = COMPARISON_DEVICES["AMD Alveo U280"]
        assert v6e.int8_tops / v6e.tdp_watts > a100.int8_tops / a100.tdp_watts
        assert a100.int8_tops / a100.tdp_watts > u280.int8_tops / u280.tdp_watts


class TestMatrixUnit:
    def test_exact_product(self, rng):
        mxu = MatrixUnit()
        a = rng.integers(0, 256, size=(32, 16), dtype=np.int64)
        b = rng.integers(0, 256, size=(16, 8), dtype=np.int64)
        result, stats = mxu.multiply(a, b)
        assert np.array_equal(result, a @ b)
        assert stats.macs == 32 * 16 * 8
        assert stats.max_accumulator_bits <= 32

    def test_rejects_wide_operands(self):
        mxu = MatrixUnit()
        with pytest.raises(MxuPrecisionError):
            mxu.multiply(np.array([[256]]), np.array([[1]]))

    def test_rejects_signed_operands(self):
        mxu = MatrixUnit()
        with pytest.raises(MxuPrecisionError):
            mxu.multiply(np.array([[-1]]), np.array([[1]]))

    def test_accumulator_overflow_detected(self):
        mxu = MatrixUnit(accumulator_bits=16)
        a = np.full((1, 64), 255, dtype=np.int64)
        with pytest.raises(MxuPrecisionError):
            mxu.multiply(a, a.T)

    def test_tile_count(self):
        mxu = MatrixUnit(systolic_dim=128)
        assert mxu.tile_count(128, 128, 128) == 1
        assert mxu.tile_count(256, 128, 64) == 2
        assert mxu.tile_count(129, 129, 1) == 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MatrixUnit().multiply(np.zeros((2, 3)), np.zeros((4, 5)))


class TestVectorUnit:
    def test_modmul_exact(self, rng, prime):
        vpu = VectorUnit()
        a = rng.integers(0, prime, size=3000, dtype=np.uint64)
        b = rng.integers(0, prime, size=3000, dtype=np.uint64)
        result, stats = vpu.elementwise_modmul(a, b, prime)
        assert np.array_equal(result, (a.astype(object) * b.astype(object) % prime).astype(np.uint64))
        assert stats.vreg_tiles == -(-3000 // 1024)

    def test_modadd_modsub(self, rng, prime):
        vpu = VectorUnit()
        a = rng.integers(0, prime, size=100, dtype=np.uint64)
        b = rng.integers(0, prime, size=100, dtype=np.uint64)
        total, _ = vpu.elementwise_modadd(a, b, prime)
        diff, _ = vpu.elementwise_modsub(total, b, prime)
        assert np.array_equal(diff, a)

    def test_rejects_wide_modulus(self):
        with pytest.raises(ValueError):
            VectorUnit().elementwise_modmul(np.array([1]), np.array([1]), 1 << 40)

    def test_tile_utilization(self):
        vpu = VectorUnit()
        stats = vpu.tile_stats(512)
        assert stats.vreg_tiles == 1
        assert stats.utilization == 0.5


class TestCrossLaneUnit:
    def test_transpose(self, rng):
        xlu = CrossLaneUnit()
        matrix = rng.integers(0, 100, size=(16, 8))
        transposed, stats = xlu.transpose(matrix)
        assert np.array_equal(transposed, matrix.T)
        assert stats.pattern == "transpose"

    def test_shuffle_and_gather(self, rng):
        xlu = CrossLaneUnit()
        values = rng.integers(0, 100, size=64)
        indices = rng.permutation(64)
        shuffled, s_stats = xlu.shuffle(values, indices)
        gathered, g_stats = xlu.gather(values, indices)
        assert np.array_equal(shuffled, values[indices])
        assert np.array_equal(gathered, values[indices])
        assert g_stats.efficiency < s_stats.efficiency

    def test_reduce(self, rng):
        xlu = CrossLaneUnit()
        values = rng.integers(0, 100, size=(4, 16))
        reduced, _ = xlu.reduce(values, axis=0)
        assert np.array_equal(reduced, values.sum(axis=0))


class TestMemoryHierarchy:
    def test_vmem_vs_hbm_bandwidth(self):
        memory = MemoryHierarchy(tensor_core("TPUv6e"))
        small = memory.effective_read_bandwidth(1 << 20)
        huge = memory.effective_read_bandwidth(1 << 30)
        assert small > huge
        assert huge == tensor_core("TPUv6e").hbm_bandwidth

    def test_fits_in_vmem(self):
        memory = MemoryHierarchy(tensor_core("TPUv4"))
        assert memory.fits_in_vmem(1 << 20)
        assert not memory.fits_in_vmem(1 << 30)

    def test_transfer_time_positive(self):
        memory = MemoryHierarchy(tensor_core("TPUv4"))
        assert memory.transfer_time(1 << 20) > 0
        assert memory.hbm_time(1 << 20) >= memory.transfer_time(1 << 20)


class TestDeviceModel:
    def test_matmul_int8_goes_to_mxu(self):
        device = TensorCoreDevice.for_generation("TPUv6e")
        event = device.cost_op(MatMulOp(name="g", m=256, k=256, n=256, operand_bits=8))
        assert event.engine == Engine.MXU

    def test_matmul_int32_goes_to_vpu(self):
        device = TensorCoreDevice.for_generation("TPUv6e")
        event = device.cost_op(MatMulOp(name="g", m=64, k=64, n=64, operand_bits=32))
        assert event.engine == Engine.VPU

    def test_vpu_matmul_much_slower(self):
        device = TensorCoreDevice.for_generation("TPUv6e")
        mxu = device.cost_op(MatMulOp(name="a", m=256, k=256, n=4096, operand_bits=8))
        vpu = device.cost_op(MatMulOp(name="b", m=256, k=256, n=4096, operand_bits=32))
        assert vpu.latency_s > mxu.latency_s

    def test_gather_slower_than_transpose(self):
        device = TensorCoreDevice.for_generation("TPUv6e")
        transpose = device.cost_op(PermuteOp(name="t", elements=1 << 20, pattern="transpose"))
        gather = device.cost_op(PermuteOp(name="g", elements=1 << 20, pattern="gather"))
        assert gather.latency_s > transpose.latency_s

    def test_memory_op(self):
        device = TensorCoreDevice.for_generation("TPUv4")
        event = device.cost_op(MemoryOp(name="m", bytes_moved=1 << 24))
        assert event.engine == Engine.MEMORY
        assert event.latency_s > 0

    def test_type_convert(self):
        device = TensorCoreDevice.for_generation("TPUv4")
        event = device.cost_op(TypeConvertOp(name="c", elements=1 << 16))
        assert event.engine == Engine.VPU

    def test_unknown_op_type(self):
        device = TensorCoreDevice.for_generation("TPUv4")
        with pytest.raises(TypeError):
            device.cost_op(object())

    def test_trace_totals_and_categories(self):
        device = TensorCoreDevice.for_generation("TPUv6e")
        graph = KernelGraph(name="k")
        graph.add(VectorOp(name="v", elements=1 << 16, category=Category.VEC_MOD_OPS))
        graph.add(MatMulOp(name="m", m=128, k=128, n=128, category=Category.NTT_MATMUL))
        trace = device.run(graph)
        assert trace.total_latency > 0
        fractions = trace.category_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert Category.VEC_MOD_OPS in fractions

    def test_latency_is_sum_of_events(self):
        device = TensorCoreDevice.for_generation("TPUv4")
        graph = KernelGraph(name="k").add(VectorOp(name="v", elements=100))
        trace = device.run(graph)
        assert trace.total_latency == pytest.approx(sum(e.latency_s for e in trace.events))

    def test_faster_generation_is_faster(self):
        compiler = CrossCompiler(PARAMETER_SETS["B"], CompilerOptions.cross_default())
        graph = compiler.he_mult()
        v4 = TensorCoreDevice.for_generation("TPUv4").latency(graph)
        v6e = TensorCoreDevice.for_generation("TPUv6e").latency(graph)
        assert v6e < v4

    def test_custom_cost_config(self):
        config = CostModelConfig(dispatch_overhead_s=0.0, kernel_launch_overhead_s=0.0)
        device = TensorCoreDevice.for_generation("TPUv6e", config)
        graph = KernelGraph(name="k").add(VectorOp(name="v", elements=1))
        baseline = TensorCoreDevice.for_generation("TPUv6e").latency(graph)
        assert device.latency(graph) < baseline


class TestTpuVirtualMachine:
    def test_amortized_latency(self):
        compiler = CrossCompiler(PARAMETER_SETS["A"], CompilerOptions.cross_default())
        graph = compiler.ntt(limbs=1)
        vm1 = TpuVirtualMachine("TPUv6e", 1)
        vm8 = TpuVirtualMachine("TPUv6e", 8)
        assert vm8.amortized_latency(graph) == pytest.approx(vm1.amortized_latency(graph) / 8)

    def test_throughput_per_watt(self):
        compiler = CrossCompiler(PARAMETER_SETS["A"], CompilerOptions.cross_default())
        graph = compiler.ntt(limbs=1)
        vm = TpuVirtualMachine("TPUv6e", 4)
        assert vm.throughput(graph) > 0
        assert vm.throughput_per_watt(graph) == pytest.approx(
            vm.throughput(graph) / vm.total_power_watts
        )

    def test_total_power(self):
        vm = TpuVirtualMachine("TPUv4", 8)
        assert vm.total_power_watts == 8 * tensor_core("TPUv4").tdp_watts
