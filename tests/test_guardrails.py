"""Runtime-guardrail tests: error taxonomy, noise budget, bounded caches.

Covers the contract surface that `tests/test_fault_injection.py` exercises
under live faults: the typed :mod:`repro.errors` hierarchy (and its
backward-compatible ``ValueError``/``KeyError`` ancestry), the adversarial
mismatched-operand matrix over every public evaluator operation, the
deterministic noise-budget estimator (including its upper-bound guarantee
against measured decryption error on deep chains), and the bounded LRU
caches registered in `repro.diagnostics`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import diagnostics
from repro.ckks import (
    CkksEncoder,
    CkksEvaluator,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.ckks.bootstrapping import CkksBootstrapper
from repro.ckks.noise import NoiseModel, NoisePolicy
from repro.ckks.poly_eval import ChebyshevSeries, evaluate_chebyshev
from repro.diagnostics import BoundedLruCache
from repro.errors import (
    BackendExactnessError,
    IncompatibleOperands,
    LevelExhausted,
    MissingKeyError,
    NoiseBudgetExhausted,
    ParameterError,
    ReproError,
    ScaleOverflow,
    operand_signature,
)


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_hierarchy_roots(self):
        for exc in (
            ParameterError,
            IncompatibleOperands,
            LevelExhausted,
            ScaleOverflow,
            NoiseBudgetExhausted,
            MissingKeyError,
            BackendExactnessError,
        ):
            assert issubclass(exc, ReproError)

    def test_legacy_compatibility(self):
        """Pre-taxonomy callers caught ValueError/KeyError; they still can."""
        assert issubclass(ParameterError, ValueError)
        assert issubclass(IncompatibleOperands, ValueError)
        assert issubclass(LevelExhausted, ValueError)
        assert issubclass(ScaleOverflow, ValueError)
        assert issubclass(NoiseBudgetExhausted, ValueError)
        assert issubclass(MissingKeyError, KeyError)
        assert issubclass(MissingKeyError, ValueError)
        assert issubclass(BackendExactnessError, ArithmeticError)

    def test_missing_key_error_message_is_readable(self):
        err = MissingKeyError("no galois key for exponent 5")
        assert "no galois key for exponent 5" in str(err)
        assert not str(err).startswith("'")  # not KeyError's repr-quoting

    def test_operand_signature_summarises(self, ckks_setup, rng):
        env = ckks_setup
        z = rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(z))
        signature = operand_signature(ct)
        assert "level" in signature
        assert "scale" in signature

    def test_incompatible_operands_carries_signatures(self, ckks_setup, rng):
        env = ckks_setup
        z = rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(z))
        err = IncompatibleOperands("mismatch", ct, ct)
        assert "mismatch" in str(err)
        assert "level" in str(err)


# ---------------------------------------------------------------------------
# Adversarial mismatched-operand matrix
# ---------------------------------------------------------------------------


@pytest.fixture()
def adversarial(ckks_setup, rng):
    env = dict(ckks_setup)
    z = rng.uniform(-1, 1, env["params"].slot_count)
    env["z"] = z
    env["ct"] = env["encryptor"].encrypt(env["encoder"].encode(z))
    return env


class TestAdversarialOperands:
    """Every public op rejects malformed operands with a typed ReproError --
    never a NumPy broadcasting traceback from deep inside a kernel."""

    def test_level_mismatch_binary_ops(self, adversarial):
        env = adversarial
        ct = env["ct"]
        low = env["evaluator"].level_down(ct, 1)
        for op in (env["evaluator"].add, env["evaluator"].sub, env["evaluator"].multiply):
            with pytest.raises(IncompatibleOperands, match="level"):
                op(ct, low)

    def test_scale_mismatch_add(self, adversarial):
        env = adversarial
        ct = env["ct"]
        other = env["encryptor"].encrypt(
            env["encoder"].encode(env["z"], scale=float(env["params"].scale) * 2)
        )
        with pytest.raises(IncompatibleOperands, match="scale"):
            env["evaluator"].add(ct, other)

    def test_add_plain_scale_mismatch_names_both_scales(self, adversarial):
        """Satellite: the old silent mis-weighting is now a typed error whose
        message carries both scales."""
        env = adversarial
        ct = env["ct"]
        wrong = env["encoder"].encode(env["z"], scale=float(env["params"].scale) * 4)
        with pytest.raises(IncompatibleOperands) as info:
            env["evaluator"].add_plain(ct, wrong)
        message = str(info.value)
        assert f"{wrong.scale:.6g}" in message
        assert f"{ct.scale:.6g}" in message

    def test_multiply_plain_scale_overflow(self, adversarial):
        """A product scale past Q_level can never rescale back: typed error."""
        env = adversarial
        ct = env["ct"]
        huge = env["encoder"].encode(env["z"], scale=2.0**80)
        with pytest.raises(ScaleOverflow, match="scale"):
            env["evaluator"].multiply_plain(ct, huge)

    def test_rescale_exhausted_chain_names_bootstrap(self, adversarial):
        env = adversarial
        ct = env["encryptor"].encrypt(env["encoder"].encode(env["z"], level=1))
        with pytest.raises(LevelExhausted, match="bootstrap"):
            env["evaluator"].rescale(ct)

    def test_corrupted_level_is_typed(self, adversarial):
        env = adversarial
        ct = env["ct"]
        ct.level = 99
        with pytest.raises(LevelExhausted, match="modulus chain"):
            env["evaluator"].add(ct, ct)

    def test_corrupted_scale_is_typed(self, adversarial):
        env = adversarial
        ct = env["ct"]
        ct.scale = float("nan")
        with pytest.raises(ParameterError, match="scale"):
            env["evaluator"].add(ct, ct)

    def test_domain_disagreement_is_typed(self, adversarial):
        env = adversarial
        ct = env["ct"]
        ct.c1 = ct.c1.to_eval()
        with pytest.raises(IncompatibleOperands, match="domain"):
            env["evaluator"].add(ct, ct)

    def test_missing_rotation_key_is_typed(self, adversarial):
        env = adversarial
        with pytest.raises(MissingKeyError):
            env["evaluator"].rotate(env["ct"], 7)

    def test_missing_relinearization_key_is_typed(self, adversarial):
        env = adversarial
        bare = CkksEvaluator(env["params"])
        with pytest.raises(MissingKeyError):
            bare.multiply(env["ct"], env["ct"])


# ---------------------------------------------------------------------------
# Noise-budget tracking
# ---------------------------------------------------------------------------


class TestNoiseTracking:
    def test_fresh_ciphertext_is_stamped(self, adversarial):
        ct = adversarial["ct"]
        assert ct.noise_bits is not None
        model = adversarial["evaluator"].noise
        assert model.budget_bits(ct.level, ct.noise_bits) > 0

    def test_noise_grows_monotonically(self, adversarial):
        env = adversarial
        ct = env["ct"]
        total = env["evaluator"].add(ct, ct)
        assert total.noise_bits > ct.noise_bits
        product = env["evaluator"].multiply(ct, ct)
        assert product.noise_bits > total.noise_bits

    def test_rescale_shrinks_noise_bits(self, adversarial):
        env = adversarial
        product = env["evaluator"].multiply(env["ct"], env["ct"])
        rescaled = env["evaluator"].rescale(product)
        assert rescaled.noise_bits < product.noise_bits

    def test_estimate_bounds_measured_error_shallow(self, adversarial):
        env = adversarial
        ct = env["ct"]
        result = env["evaluator"].rescale(env["evaluator"].multiply(ct, ct))
        decoded = env["encoder"].decode(env["decryptor"].decrypt(result))
        measured = np.abs(decoded - env["z"] ** 2).max()
        bound = env["evaluator"].noise.decode_error_bound(
            result.scale, result.noise_bits
        )
        assert measured <= bound

    def test_exhaustion_raises_before_garbage_decode(self, adversarial):
        env = adversarial
        env["evaluator"]._noise_model = NoiseModel(
            env["params"], NoisePolicy(raise_margin_bits=1000.0)
        )
        with pytest.raises(NoiseBudgetExhausted, match="bootstrap"):
            env["evaluator"].multiply(env["ct"], env["ct"])

    def test_low_budget_records_warning_event(self, adversarial):
        env = adversarial
        diagnostics.clear_events()
        env["evaluator"]._noise_model = NoiseModel(
            env["params"],
            NoisePolicy(warn_margin_bits=1000.0, raise_margin_bits=0.0),
        )
        env["evaluator"].add(env["ct"], env["ct"])
        assert diagnostics.events("noise_budget_low")
        diagnostics.clear_events()

    def test_tracking_disabled_by_policy(self, rng):
        params = CkksParameters.create(
            degree=64, limbs=3, log_q=28, dnum=2, scale_bits=21
        )
        keygen = KeyGenerator(params, rng=np.random.default_rng(7))
        encoder = CkksEncoder(params)
        encryptor = Encryptor(params, keygen.public_key(), keygen)
        encryptor._noise_model = NoiseModel(params, NoisePolicy(track=False))
        evaluator = CkksEvaluator(params, relin_key=keygen.relinearization_key())
        evaluator._noise_model = NoiseModel(params, NoisePolicy(track=False))
        ct = encryptor.encrypt(encoder.encode(rng.uniform(-1, 1, params.slot_count)))
        assert ct.noise_bits is None
        result = evaluator.multiply(ct, ct)
        # Untracked inputs stay untracked -- the estimator never guesses.
        assert result.noise_bits is None

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOISE_TRACK", "0")
        assert not NoisePolicy.from_env().track
        monkeypatch.setenv("REPRO_NOISE_TRACK", "1")
        monkeypatch.setenv("REPRO_NOISE_WARN_BITS", "12.5")
        monkeypatch.setenv("REPRO_NOISE_RAISE_BITS", "2.0")
        policy = NoisePolicy.from_env()
        assert policy.track
        assert policy.warn_margin_bits == 12.5
        assert policy.raise_margin_bits == 2.0


# ---------------------------------------------------------------------------
# Deep-chain upper-bound guarantees (the acceptance cross-checks)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def deep_env():
    """The deep functional rig: 20 x 29-bit limbs at degree 64, scale = q."""
    params = CkksParameters.create(
        degree=64, limbs=20, log_q=29, dnum=10, scale_bits=29, special_limbs=3
    )
    params.error_stddev = 1.0
    keygen = KeyGenerator(params, rng=np.random.default_rng(17))
    encoder = CkksEncoder(params)
    evaluator = CkksEvaluator(params, relin_key=keygen.relinearization_key())
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    return {
        "params": params,
        "encoder": encoder,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
    }


class TestNoiseUpperBoundDeep:
    def test_depth63_ps_chain_bounded(self, deep_env):
        """The estimate upper-bounds measured error through a degree-63
        Paterson-Stockmeyer evaluation (~16 non-scalar multiplications)."""
        env = deep_env
        rng = np.random.default_rng(7)
        coefficients = rng.normal(size=64) / np.arange(1, 65)
        series = ChebyshevSeries(coefficients, (-1.0, 1.0))
        x = rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(x))
        result = evaluate_chebyshev(env["evaluator"], series, ct)
        assert result.noise_bits is not None
        decoded = env["encoder"].decode(env["decryptor"].decrypt(result))
        measured = np.abs(decoded - series(x)).max()
        bound = env["evaluator"].noise.decode_error_bound(
            result.scale, result.noise_bits
        )
        assert measured <= bound
        # The bound is an estimate, not a tautology: it stays far below the
        # message magnitude, so it still certifies a meaningful decode.
        assert bound < 1.0

    def test_full_bootstrap_bounded(self):
        """The post-bootstrap stamp upper-bounds the measured refresh error."""
        params = CkksParameters.create(
            degree=64, limbs=20, log_q=29, dnum=10, scale_bits=29, special_limbs=3
        )
        params.error_stddev = 1.0
        keygen = KeyGenerator(params, rng=np.random.default_rng(11), hamming_weight=4)
        encoder = CkksEncoder(params)
        bootstrapper = CkksBootstrapper.create(encoder)
        galois_keys = keygen.galois_keys_for_steps(
            bootstrapper.rotation_steps(), conjugation=True
        )
        evaluator = CkksEvaluator(
            params, relin_key=keygen.relinearization_key(), galois_keys=galois_keys
        )
        encryptor = Encryptor(params, keygen.public_key(), keygen)
        decryptor = Decryptor(params, keygen.secret_key)
        rng = np.random.default_rng(13)
        z = 0.01 * (
            rng.uniform(-1, 1, params.slot_count)
            + 1j * rng.uniform(-1, 1, params.slot_count)
        )
        exhausted = encryptor.encrypt(encoder.encode(z, level=1))
        refreshed = bootstrapper.bootstrap(evaluator, exhausted)
        assert refreshed.noise_bits is not None
        decoded = encoder.decode(decryptor.decrypt(refreshed))
        measured = np.abs(decoded - z).max()
        bound = evaluator.noise.decode_error_bound(
            refreshed.scale, refreshed.noise_bits
        )
        assert measured <= bound


# ---------------------------------------------------------------------------
# Bounded caches + diagnostics registry
# ---------------------------------------------------------------------------


class TestBoundedLruCache:
    def test_eviction_order_is_lru(self):
        cache = BoundedLruCache(name="t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_stats_counters(self):
        cache = BoundedLruCache(name="t", capacity=1)
        assert cache.get("missing") is None
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 1

    def test_get_or_create_builds_once(self):
        cache = BoundedLruCache(name="t", capacity=4)
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", build) == "value"
        assert cache.get_or_create("k", build) == "value"
        assert len(calls) == 1


class TestEncoderCacheSatellite:
    def test_encode_cache_hits_and_misses(self, ckks_setup, rng):
        env = ckks_setup
        encoder = env["encoder"]
        before = encoder.encode_cache_stats()
        z = rng.uniform(-1, 1, env["params"].slot_count)
        encoder.encode(z, cache=True)
        encoder.encode(z, cache=True)
        after = encoder.encode_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_uncached_encode_leaves_counters(self, ckks_setup, rng):
        env = ckks_setup
        before = env["encoder"].encode_cache_stats()
        env["encoder"].encode(rng.uniform(-1, 1, env["params"].slot_count))
        assert env["encoder"].encode_cache_stats() == before


class TestDiagnosticsRegistry:
    def test_cache_stats_names_engine_caches(self):
        from repro.poly.ntt_engine import plan_for
        from repro.numtheory.primes import generate_ntt_prime

        plan_for(64, generate_ntt_prime(28, 64))  # ensure at least one entry
        stats = diagnostics.cache_stats()
        assert "ntt.plans" in stats
        assert "ntt.plan_stacks" in stats
        assert "ntt.calibration" in stats
        assert stats["ntt.plans"]["size"] >= 1

    def test_report_shape(self):
        report = diagnostics.report()
        assert "caches" in report
        assert "events" in report

    def test_event_log_is_bounded_and_clearable(self):
        diagnostics.clear_events()
        for i in range(5):
            diagnostics.record_event("drill", index=i)
        assert len(diagnostics.events("drill")) == 5
        assert diagnostics.events("absent") == []
        diagnostics.clear_events()
        assert diagnostics.events() == []
