"""Tests for primality testing and NTT-friendly prime generation."""

import pytest

from repro.numtheory.primes import (
    generate_ntt_prime,
    generate_rns_primes,
    is_prime,
    next_prime,
    previous_prime,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 561, 1105):  # includes Carmichael numbers
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        assert is_prime((1 << 61) - 1)  # Mersenne prime

    def test_large_composite(self):
        assert not is_prime((1 << 61) - 3)

    def test_square_of_prime(self):
        assert not is_prime(10007 * 10007)


class TestNextPreviousPrime:
    def test_next_prime_basic(self):
        assert next_prime(10) == 11
        assert next_prime(11) == 13
        assert next_prime(1) == 2

    def test_previous_prime_basic(self):
        assert previous_prime(10) == 7
        assert previous_prime(3) == 2

    def test_previous_prime_error(self):
        with pytest.raises(ValueError):
            previous_prime(2)

    def test_roundtrip(self):
        p = next_prime(1_000_000)
        assert previous_prime(p + 1) == p


class TestNttPrimes:
    @pytest.mark.parametrize("bits,degree", [(20, 64), (28, 256), (28, 4096), (30, 1024)])
    def test_ntt_prime_congruence(self, bits, degree):
        q = generate_ntt_prime(bits, degree)
        assert is_prime(q)
        assert q % (2 * degree) == 1
        assert q.bit_length() == bits

    def test_below_constraint(self):
        q1 = generate_ntt_prime(28, 64)
        q2 = generate_ntt_prime(28, 64, below=q1)
        assert q2 < q1
        assert q2 % 128 == 1

    def test_rns_primes_distinct(self):
        primes = generate_rns_primes(6, 28, 128)
        assert len(set(primes)) == 6
        assert all(p % 256 == 1 for p in primes)
        assert primes == sorted(primes, reverse=True)

    def test_rns_primes_count_validation(self):
        with pytest.raises(ValueError):
            generate_rns_primes(0, 28, 64)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            generate_ntt_prime(1, 64)
