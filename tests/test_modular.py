"""Tests for exact modular arithmetic primitives."""

import pytest

from repro.numtheory.modular import (
    centered_mod,
    find_generator,
    is_primitive_nth_root,
    mod_exp,
    mod_inv,
    primitive_nth_root_of_unity,
)
from repro.numtheory.primes import generate_ntt_prime


class TestModExpInv:
    def test_mod_exp_matches_pow(self):
        assert mod_exp(7, 128, 1000003) == pow(7, 128, 1000003)

    def test_mod_exp_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            mod_exp(2, 3, 0)

    def test_mod_inv_roundtrip(self):
        q = 268369921
        for value in (2, 17, 123456, q - 1):
            inverse = mod_inv(value, q)
            assert (value * inverse) % q == 1

    def test_mod_inv_nonexistent(self):
        with pytest.raises(ValueError):
            mod_inv(6, 12)

    def test_mod_inv_negative_modulus(self):
        with pytest.raises(ValueError):
            mod_inv(3, -5)


class TestCenteredMod:
    def test_positive_half(self):
        assert centered_mod(3, 11) == 3

    def test_negative_half(self):
        assert centered_mod(8, 11) == -3

    def test_boundary(self):
        assert centered_mod(5, 10) == 5
        assert centered_mod(6, 10) == -4

    def test_negative_input(self):
        assert centered_mod(-3, 11) == -3


class TestRootsOfUnity:
    def test_generator_has_full_order(self):
        q = generate_ntt_prime(20, 64)
        g = find_generator(q)
        assert pow(g, q - 1, q) == 1
        assert pow(g, (q - 1) // 2, q) != 1

    def test_primitive_2n_root(self):
        degree = 128
        q = generate_ntt_prime(28, degree)
        psi = primitive_nth_root_of_unity(2 * degree, q)
        assert is_primitive_nth_root(psi, 2 * degree, q)
        # psi^N must be -1 for a negacyclic transform to exist.
        assert pow(psi, degree, q) == q - 1

    def test_omega_is_nth_root(self):
        degree = 64
        q = generate_ntt_prime(28, degree)
        psi = primitive_nth_root_of_unity(2 * degree, q)
        omega = pow(psi, 2, q)
        assert is_primitive_nth_root(omega, degree, q)

    def test_root_does_not_exist(self):
        with pytest.raises(ValueError):
            primitive_nth_root_of_unity(64, 97)  # 64 does not divide 96

    def test_not_primitive(self):
        q = generate_ntt_prime(20, 64)
        assert not is_primitive_nth_root(1, 64, q)

    def test_find_generator_requires_prime(self):
        with pytest.raises(ValueError):
            find_generator(100)
