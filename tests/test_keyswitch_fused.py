"""Tests for the fused key-switch pipeline and hoisted rotations.

Covers the three tentpole claims:

* stacked BConv is bit-exact against the per-digit ``convert`` loop,
* fused ``switch_key`` matches the digit-loop oracle bit-for-bit while
  running exactly one forward and two inverse transform passes regardless of
  ``dnum``, and
* hoisted rotations decrypt to the same slots as sequential ``rotate``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoding import CkksEncoder
from repro.ckks.encryptor import Decryptor, Encryptor
from repro.ckks.evaluator import CkksEvaluator, _rotation_exponent
from repro.ckks.keys import KeyGenerator, digit_partition
from repro.ckks.keyswitch import (
    mod_down,
    mod_down_stacked,
    switch_galois_eval,
    switch_key,
    switch_key_unfused,
)
from repro.ckks.params import CkksParameters
from repro.poly.basis_conversion import (
    StackedBasisConversion,
    conversion_for,
    stacked_conversion_for,
)
from repro.poly.ntt_engine import reset_transform_counts, transform_counts
from repro.poly.ring import automorphism_eval_indices
from repro.poly.rns_poly import RnsBasis, RnsPolynomial
from repro.workloads.logistic_regression import hoisted_rotation_sum
from repro.workloads.mnist import run_encrypted_conv_taps


@pytest.fixture(scope="module")
def env(ckks_setup, rng):
    z1 = rng.uniform(-1, 1, ckks_setup["params"].slot_count) + 1j * rng.uniform(
        -1, 1, ckks_setup["params"].slot_count
    )
    ct1 = ckks_setup["encryptor"].encrypt(ckks_setup["encoder"].encode(z1))
    return {**ckks_setup, "z1": z1, "ct1": ct1}


@pytest.fixture(scope="module")
def dnum3_setup():
    """A second small instance with three digits (odd digit count coverage)."""
    params = CkksParameters.create(degree=64, limbs=3, log_q=28, dnum=3, scale_bits=21)
    keygen = KeyGenerator(params, rng=np.random.default_rng(11))
    relin_key = keygen.relinearization_key()
    return {"params": params, "keygen": keygen, "relin_key": relin_key}


def decrypt_decode(env, ciphertext):
    return env["encoder"].decode(env["decryptor"].decrypt(ciphertext))


def random_poly(params, level, rng, bound=1000):
    basis = params.basis_at_level(level)
    return RnsPolynomial.from_signed_coefficients(
        rng.integers(-bound, bound, size=params.degree, dtype=np.int64), basis
    )


class TestStackedBConv:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_bit_exact_vs_per_digit_convert(self, ckks_setup, rng, level):
        params = ckks_setup["params"]
        level_basis = params.basis_at_level(level)
        extended = params.extended_basis(level)
        partitions = tuple(digit_partition(level, params.dnum))
        conversion = stacked_conversion_for(level_basis, extended, partitions)

        poly = random_poly(params, level, rng)
        stacked = conversion.convert_stacked(poly.residues)
        assert stacked.shape == (len(partitions), extended.size, params.degree)

        for d, (start, stop) in enumerate(partitions):
            digit_basis = RnsBasis(
                moduli=level_basis.moduli[start:stop], degree=params.degree
            )
            digit_poly = RnsPolynomial(
                digit_basis, poly.residues[start:stop], "coeff"
            )
            expected = conversion_for(digit_basis, extended).convert(digit_poly)
            assert np.array_equal(stacked[d], expected.residues)

    def test_convert_returns_per_digit_polynomials(self, ckks_setup, rng):
        params = ckks_setup["params"]
        level = params.limbs
        level_basis = params.basis_at_level(level)
        extended = params.extended_basis(level)
        partitions = tuple(digit_partition(level, params.dnum))
        conversion = stacked_conversion_for(level_basis, extended, partitions)
        poly = random_poly(params, level, rng)
        digits = conversion.convert(poly)
        assert len(digits) == len(partitions)
        stacked = conversion.convert_stacked(poly.residues)
        for d, digit in enumerate(digits):
            assert digit.basis.moduli == extended.moduli
            assert np.array_equal(digit.residues, stacked[d])

    def test_partitions_must_tile_the_source(self, ckks_setup):
        params = ckks_setup["params"]
        level_basis = params.basis_at_level(3)
        extended = params.extended_basis(3)
        for bad in [((0, 1), (2, 3)), ((0, 2),), ((0, 1), (1, 2), (2, 4))]:
            with pytest.raises(ValueError):
                StackedBasisConversion(
                    source=level_basis, target=extended, partitions=bad
                )


class TestFusedSwitchKey:
    @pytest.mark.parametrize("level_offset", [0, 1])
    def test_bit_exact_vs_unfused(self, ckks_setup, rng, level_offset):
        params = ckks_setup["params"]
        relin = ckks_setup["evaluator"].relin_key
        level = params.limbs - level_offset
        d = random_poly(params, level, rng)
        fused0, fused1 = switch_key(d, relin, params, level)
        loop0, loop1 = switch_key_unfused(d, relin, params, level)
        assert np.array_equal(fused0.residues, loop0.residues)
        assert np.array_equal(fused1.residues, loop1.residues)

    def test_bit_exact_with_three_digits(self, dnum3_setup, rng):
        params = dnum3_setup["params"]
        relin = dnum3_setup["relin_key"]
        level = params.limbs
        assert len(digit_partition(level, params.dnum)) == 3
        d = random_poly(params, level, rng)
        fused = switch_key(d, relin, params, level)
        loop = switch_key_unfused(d, relin, params, level)
        for fused_poly, loop_poly in zip(fused, loop):
            assert np.array_equal(fused_poly.residues, loop_poly.residues)

    @pytest.mark.parametrize("setup_name", ["two_digits", "three_digits"])
    def test_exactly_one_forward_one_inverse_pass(
        self, ckks_setup, dnum3_setup, rng, setup_name
    ):
        """Lazy ModDown: 1 batched forward + 1 batched inverse for any dnum.

        The limb-pass counters pin down that the single stacked calls are not
        hiding extra work: the forward transforms the ``(dnum, L', N)`` digit
        tensor (``dnum * L'`` rows) and the inverse the stacked ``(2, L', N)``
        accumulator pair (``2 * L'`` rows).
        """
        if setup_name == "two_digits":
            params, relin = ckks_setup["params"], ckks_setup["evaluator"].relin_key
        else:
            params, relin = dnum3_setup["params"], dnum3_setup["relin_key"]
        level = params.limbs
        extended_size = params.extended_basis(level).size
        dnum = len(digit_partition(level, params.dnum))
        d = random_poly(params, level, rng)
        switch_key(d, relin, params, level)  # warm caches (key eval stacks)
        reset_transform_counts()
        switch_key(d, relin, params, level)
        counts = transform_counts()
        assert counts["forward"] == 1
        assert counts["inverse"] == 1
        assert counts["forward_limbs"] == dnum * extended_size
        assert counts["inverse_limbs"] == 2 * extended_size

    def test_basis_mismatch_rejected(self, ckks_setup):
        params = ckks_setup["params"]
        relin = ckks_setup["evaluator"].relin_key
        d = RnsPolynomial.zero(params.basis_at_level(params.limbs))
        with pytest.raises(ValueError):
            switch_key(d, relin, params, params.limbs - 1)

    def test_switches_to_canonical_secret(self, ckks_setup, rng):
        """End-to-end correctness: ks0 + ks1*s ~= d * s^2 (noise only)."""
        params = ckks_setup["params"]
        keygen = ckks_setup["keygen"]
        relin = ckks_setup["evaluator"].relin_key
        level = params.limbs
        basis = params.basis_at_level(level)
        secret = keygen.secret_key.polynomial(basis)
        secret_squared = secret.multiply(secret).to_coeff()
        d = random_poly(params, level, rng)
        ks0, ks1 = switch_key(d, relin, params, level)
        switched = ks0.add(ks1.multiply(secret).to_coeff())
        error = switched.sub(d.multiply(secret_squared).to_coeff())
        signed_error = np.array(error.to_signed_coefficients(), dtype=np.float64)
        assert np.abs(signed_error).max() < 2**24


class TestLazyModDown:
    def test_stacked_matches_per_polynomial_mod_down(self, ckks_setup, rng):
        """The stacked kernel is bit-identical to ModDown-ing each operand."""
        params = ckks_setup["params"]
        level = params.limbs
        extended = params.extended_basis(level)
        stacked = np.stack(
            [
                np.stack(
                    [rng.integers(0, q, params.degree, dtype=np.uint64) for q in extended.moduli]
                )
                for _ in range(2)
            ]
        )
        down = mod_down_stacked(stacked, params, level)
        for index in range(2):
            poly = RnsPolynomial(extended, stacked[index], "coeff")
            expected = mod_down(poly, params, level)
            assert np.array_equal(down[index], expected.residues)

    def test_stacked_rejects_wrong_basis(self, ckks_setup):
        params = ckks_setup["params"]
        level = params.limbs
        with pytest.raises(ValueError):
            mod_down_stacked(
                np.zeros((2, level, params.degree), dtype=np.uint64), params, level
            )

    def test_galois_eval_passes(self, ckks_setup, rng):
        """switch_galois_eval: one stacked inverse for the rotated pair plus
        the fused switch's 1 fwd + 1 inv -- never a per-component pass."""
        params = ckks_setup["params"]
        evaluator = ckks_setup["evaluator"]
        keygen = ckks_setup["keygen"]
        level = params.limbs
        exponent = pow(5, 1, 2 * params.degree)
        galois_key = keygen.galois_key(exponent)
        basis = params.basis_at_level(level)
        c0 = random_poly(params, level, rng).to_eval()
        c1 = random_poly(params, level, rng).to_eval()
        switch_galois_eval(
            c0.residues, c1.residues, galois_key, exponent, params, level
        )  # warm key eval stacks
        reset_transform_counts()
        switch_galois_eval(
            c0.residues, c1.residues, galois_key, exponent, params, level
        )
        counts = transform_counts()
        assert counts["forward"] == 1
        assert counts["inverse"] == 2
        extended_size = params.extended_basis(level).size
        assert counts["inverse_limbs"] == 2 * basis.size + 2 * extended_size


class TestEvalDomainAutomorphism:
    @pytest.mark.parametrize("exponent_steps", [1, 2, 3])
    def test_permutation_matches_coefficient_automorphism(
        self, ckks_setup, rng, exponent_steps
    ):
        params = ckks_setup["params"]
        exponent = pow(5, exponent_steps, 2 * params.degree)
        poly = random_poly(params, params.limbs, rng)
        indices = automorphism_eval_indices(params.degree, exponent)
        direct = poly.automorphism(exponent).to_eval()
        permuted = np.take(poly.to_eval().residues, indices, axis=-1)
        assert np.array_equal(direct.residues, permuted)

    def test_conjugation_exponent(self, ckks_setup, rng):
        params = ckks_setup["params"]
        exponent = 2 * params.degree - 1
        poly = random_poly(params, params.limbs, rng)
        indices = automorphism_eval_indices(params.degree, exponent)
        direct = poly.automorphism(exponent).to_eval()
        assert np.array_equal(
            direct.residues, np.take(poly.to_eval().residues, indices, axis=-1)
        )

    def test_even_exponent_rejected(self):
        with pytest.raises(ValueError):
            automorphism_eval_indices(64, 6)


class TestHoistedRotation:
    @pytest.mark.parametrize("steps", [1, 2])
    def test_decrypts_to_same_slots_as_sequential(self, env, steps):
        evaluator = env["evaluator"]
        hoisted = evaluator.hoist(env["ct1"])
        via_hoist = evaluator.rotate_hoisted(hoisted, steps)
        sequential = evaluator.rotate(env["ct1"], steps)
        expected = np.roll(env["z1"], -steps)
        assert np.abs(decrypt_decode(env, via_hoist) - expected).max() < 1e-2
        assert (
            np.abs(
                decrypt_decode(env, via_hoist) - decrypt_decode(env, sequential)
            ).max()
            < 1e-2
        )

    def test_one_hoist_many_rotations(self, env):
        evaluator = env["evaluator"]
        hoisted = evaluator.hoist(env["ct1"])
        for steps in (1, 2):
            rotated = evaluator.rotate_hoisted(hoisted, steps)
            expected = np.roll(env["z1"], -steps)
            assert np.abs(decrypt_decode(env, rotated) - expected).max() < 1e-2

    def test_conjugate_hoisted(self, env):
        evaluator = env["evaluator"]
        hoisted = evaluator.hoist(env["ct1"])
        conjugated = evaluator.conjugate_hoisted(hoisted)
        assert np.abs(decrypt_decode(env, conjugated) - np.conj(env["z1"])).max() < 1e-2

    def test_hoisted_rotation_pays_no_forward_transform(self, env):
        evaluator = env["evaluator"]
        hoisted = evaluator.hoist(env["ct1"])
        evaluator.rotate_hoisted(hoisted, 1)  # warm key eval stacks
        reset_transform_counts()
        evaluator.rotate_hoisted(hoisted, 2)
        counts = transform_counts()
        assert counts["forward"] == 0
        assert counts["inverse"] == 1

    def test_hoist_requires_galois_keys(self, env):
        bare = CkksEvaluator(env["params"], relin_key=env["evaluator"].relin_key)
        with pytest.raises(ValueError):
            bare.hoist(env["ct1"])


class TestSquareSpecialisation:
    def test_bit_exact_vs_generic_multiply(self, env):
        evaluator = env["evaluator"]
        squared = evaluator.square(env["ct1"])
        generic = evaluator.multiply(env["ct1"], env["ct1"])
        assert np.array_equal(squared.c0.residues, generic.c0.residues)
        assert np.array_equal(squared.c1.residues, generic.c1.residues)
        assert squared.scale == generic.scale
        assert squared.level == generic.level

    def test_decrypts_to_square(self, env):
        squared = env["evaluator"].square(env["ct1"])
        assert np.abs(decrypt_decode(env, squared) - env["z1"] ** 2).max() < 5e-2


class TestRotationExponentMemoised:
    def test_matches_pow(self, ckks_setup):
        degree = ckks_setup["params"].degree
        for steps in (-2, -1, 1, 2, 5):
            assert _rotation_exponent(steps, degree) == pow(5, steps, 2 * degree)

    def test_cache_hits(self, ckks_setup):
        degree = ckks_setup["params"].degree
        _rotation_exponent(1, degree)
        before = _rotation_exponent.cache_info().hits
        _rotation_exponent(1, degree)
        assert _rotation_exponent.cache_info().hits == before + 1


class TestWorkloadRotationBatches:
    def test_hoisted_rotation_sum(self, env):
        result = hoisted_rotation_sum(env["evaluator"], env["ct1"], [0, 1, 2])
        expected = env["z1"] + np.roll(env["z1"], -1) + np.roll(env["z1"], -2)
        assert np.abs(decrypt_decode(env, result) - expected).max() < 5e-2

    def test_hoisted_rotation_sum_rejects_empty(self, env):
        with pytest.raises(ValueError):
            hoisted_rotation_sum(env["evaluator"], env["ct1"], [])

    def test_run_encrypted_conv_taps(self, env, rng):
        params = env["params"]
        w0 = rng.uniform(-1, 1, params.slot_count)
        w1 = rng.uniform(-1, 1, params.slot_count)
        result = run_encrypted_conv_taps(
            env["evaluator"],
            env["encoder"],
            env["ct1"],
            [(0, w0), (1, w1)],
        )
        expected = w0 * env["z1"] + w1 * np.roll(env["z1"], -1)
        assert np.abs(decrypt_decode(env, result) - expected).max() < 5e-2
