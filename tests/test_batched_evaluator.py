"""Batched multi-ciphertext evaluation: bit-exactness against the loop.

The batch axis contract (:mod:`repro.ckks.batch`): ``B`` compatible
ciphertexts stacked into one ``(B, 2, L, N)`` ciphertext must run through
every public evaluator operator as ONE batched kernel pass whose unstacked
result is **bit-identical** (``np.array_equal`` on every residue component)
to applying the same operator to each member sequentially.  These are the
property tests that pin that contract, operator by operator, plus the
stacking discipline itself (compatibility validation, noise bookkeeping,
member independence) and the batch-aware operation counters the schedule
models ground against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.batch import batch_size, stack_ciphertexts, unstack_ciphertext
from repro.ckks.encoding import CkksEncoder
from repro.ckks.encryptor import Decryptor, Encryptor
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear_transform import (
    DiagonalLinearTransform,
    required_rotation_steps,
)
from repro.ckks.params import CkksParameters
from repro.errors import IncompatibleOperands, ParameterError

BATCH = 4


@pytest.fixture(scope="module")
def env():
    """A serving-ring CKKS instance with Galois keys for every rotation."""
    params = CkksParameters.create(
        degree=64, limbs=4, log_q=28, dnum=2, scale_bits=22, special_limbs=3
    )
    keygen = KeyGenerator(params, rng=np.random.default_rng(42))
    encoder = CkksEncoder(params)
    evaluator = CkksEvaluator(
        params,
        relin_key=keygen.relinearization_key(),
        galois_keys=keygen.galois_keys_for_steps(
            range(1, params.slot_count), conjugation=True
        ),
    )
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    return {
        "params": params,
        "encoder": encoder,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
    }


def fresh_batch(env, count: int = BATCH, seed: int = 7):
    """``count`` independent ciphertexts over random complex slots."""
    params, encoder, encryptor = env["params"], env["encoder"], env["encryptor"]
    rng = np.random.default_rng(seed)
    cts = []
    for _ in range(count):
        z = rng.uniform(-1, 1, params.slot_count) + 1j * rng.uniform(
            -1, 1, params.slot_count
        )
        cts.append(encryptor.encrypt(encoder.encode(z)))
    return cts


def assert_bit_identical(sequential, batched):
    """Every member of ``batched`` equals its sequential oracle exactly."""
    assert len(batched) == len(sequential)
    for index, (seq, bat) in enumerate(zip(sequential, batched)):
        assert bat.level == seq.level
        assert bat.scale == pytest.approx(seq.scale)
        assert np.array_equal(
            seq.c0.to_coeff().residues, bat.c0.to_coeff().residues
        ), f"member {index}: c0 differs from the sequential oracle"
        assert np.array_equal(
            seq.c1.to_coeff().residues, bat.c1.to_coeff().residues
        ), f"member {index}: c1 differs from the sequential oracle"
        assert (seq.c2 is None) == (bat.c2 is None)
        if seq.c2 is not None:
            assert np.array_equal(
                seq.c2.to_coeff().residues, bat.c2.to_coeff().residues
            ), f"member {index}: c2 differs from the sequential oracle"


# ---------------------------------------------------------------------------
# Stacking discipline
# ---------------------------------------------------------------------------


class TestStacking:
    def test_roundtrip_is_bit_identical(self, env):
        cts = fresh_batch(env)
        stacked = stack_ciphertexts(cts)
        assert batch_size(stacked) == BATCH
        assert stacked.c0.batch_shape == (BATCH,)
        assert_bit_identical(cts, unstack_ciphertext(stacked))

    def test_single_member_passthrough(self, env):
        ct = fresh_batch(env, count=1)[0]
        assert stack_ciphertexts([ct]) is ct
        assert batch_size(ct) == 1
        assert unstack_ciphertext(ct) == [ct]

    def test_empty_batch_rejected(self):
        with pytest.raises(ParameterError):
            stack_ciphertexts([])

    def test_level_mismatch_rejected(self, env):
        cts = fresh_batch(env, count=2)
        cts[1] = env["evaluator"].level_down(cts[1])
        with pytest.raises(IncompatibleOperands):
            stack_ciphertexts(cts)

    def test_scale_mismatch_rejected(self, env):
        cts = fresh_batch(env, count=2)
        cts[1] = env["evaluator"].mul_plain_scalar(cts[1], 0.5)
        with pytest.raises(IncompatibleOperands):
            stack_ciphertexts(cts)

    def test_linear_quadratic_mix_rejected(self, env):
        cts = fresh_batch(env, count=2)
        quadratic = env["evaluator"].multiply(cts[1], cts[1], relinearize=False)
        with pytest.raises(IncompatibleOperands):
            stack_ciphertexts([cts[0], quadratic])

    def test_restacking_a_batch_rejected(self, env):
        stacked = stack_ciphertexts(fresh_batch(env, count=2))
        with pytest.raises(ParameterError):
            stack_ciphertexts([stacked, stacked])

    def test_noise_is_conservative_maximum(self, env):
        cts = fresh_batch(env)
        bits = [ct.noise_bits for ct in cts]
        assert all(b is not None for b in bits)
        cts[2].noise_bits = max(bits) + 5.0
        stacked = stack_ciphertexts(cts)
        assert stacked.noise_bits == pytest.approx(max(bits) + 5.0)

    def test_unstacked_members_are_independent_copies(self, env):
        stacked = stack_ciphertexts(fresh_batch(env, count=2))
        members = unstack_ciphertext(stacked)
        before = members[1].c0.residues.copy()
        stacked.c0.residues[0] ^= 1
        assert np.array_equal(members[1].c0.residues, before)


# ---------------------------------------------------------------------------
# Every batched operator vs the sequential loop
# ---------------------------------------------------------------------------


class TestBatchedOpsBitExact:
    def _roundtrip(self, env, op):
        """unstack(op(stack(cts))) must equal [op(ct) for ct in cts]."""
        cts = fresh_batch(env)
        sequential = [op(ct) for ct in cts]
        batched = unstack_ciphertext(op(stack_ciphertexts(cts)))
        assert_bit_identical(sequential, batched)

    def test_add(self, env):
        ev = env["evaluator"]
        lhs, rhs = fresh_batch(env, seed=7), fresh_batch(env, seed=8)
        sequential = [ev.add(a, b) for a, b in zip(lhs, rhs)]
        batched = unstack_ciphertext(
            ev.add(stack_ciphertexts(lhs), stack_ciphertexts(rhs))
        )
        assert_bit_identical(sequential, batched)

    def test_sub(self, env):
        ev = env["evaluator"]
        lhs, rhs = fresh_batch(env, seed=7), fresh_batch(env, seed=8)
        sequential = [ev.sub(a, b) for a, b in zip(lhs, rhs)]
        batched = unstack_ciphertext(
            ev.sub(stack_ciphertexts(lhs), stack_ciphertexts(rhs))
        )
        assert_bit_identical(sequential, batched)

    def test_multiply_relinearized(self, env):
        ev = env["evaluator"]
        lhs, rhs = fresh_batch(env, seed=7), fresh_batch(env, seed=8)
        sequential = [ev.multiply(a, b) for a, b in zip(lhs, rhs)]
        batched = unstack_ciphertext(
            ev.multiply(stack_ciphertexts(lhs), stack_ciphertexts(rhs))
        )
        assert_bit_identical(sequential, batched)

    def test_multiply_unrelinearized_keeps_c2(self, env):
        ev = env["evaluator"]
        lhs, rhs = fresh_batch(env, seed=7), fresh_batch(env, seed=8)
        sequential = [
            ev.multiply(a, b, relinearize=False) for a, b in zip(lhs, rhs)
        ]
        batched = unstack_ciphertext(
            ev.multiply(
                stack_ciphertexts(lhs),
                stack_ciphertexts(rhs),
                relinearize=False,
            )
        )
        assert batched[0].c2 is not None
        assert_bit_identical(sequential, batched)

    def test_square(self, env):
        self._roundtrip(env, env["evaluator"].square)

    def test_multiply_plain(self, env):
        ev, encoder, params = env["evaluator"], env["encoder"], env["params"]
        level = fresh_batch(env, count=1)[0].level
        plaintext = encoder.encode(
            np.linspace(-0.5, 0.5, params.slot_count), level=level
        )
        self._roundtrip(env, lambda ct: ev.multiply_plain(ct, plaintext))

    def test_add_plain(self, env):
        ev, encoder, params = env["evaluator"], env["encoder"], env["params"]
        ct0 = fresh_batch(env, count=1)[0]
        plaintext = encoder.encode(
            np.linspace(-0.5, 0.5, params.slot_count),
            level=ct0.level,
            scale=ct0.scale,
        )
        self._roundtrip(env, lambda ct: ev.add_plain(ct, plaintext))

    def test_scalar_ops(self, env):
        ev = env["evaluator"]
        self._roundtrip(env, lambda ct: ev.mul_plain_scalar(ct, 0.75))
        self._roundtrip(env, lambda ct: ev.add_scalar(ct, 0.25 - 0.5j))
        self._roundtrip(env, lambda ct: ev.sub_scalar(ct, 1.25))

    def test_rescale(self, env):
        ev = env["evaluator"]
        self._roundtrip(env, lambda ct: ev.rescale(ev.square(ct)))

    def test_level_down(self, env):
        self._roundtrip(env, env["evaluator"].level_down)

    def test_rotate(self, env):
        ev = env["evaluator"]
        self._roundtrip(env, lambda ct: ev.rotate(ct, 3))

    def test_conjugate(self, env):
        self._roundtrip(env, env["evaluator"].conjugate)

    def test_hoisted_rotations(self, env):
        ev = env["evaluator"]
        cts = fresh_batch(env)
        steps = [1, 5]
        sequential = [
            [ev.rotate_hoisted(ev.hoist(ct), s) for s in steps] for ct in cts
        ]
        hoisted = ev.hoist(stack_ciphertexts(cts))
        for position, step in enumerate(steps):
            batched = unstack_ciphertext(ev.rotate_hoisted(hoisted, step))
            assert_bit_identical(
                [per_ct[position] for per_ct in sequential], batched
            )

    def test_deep_pipeline(self, env):
        """The serving-shaped circuit end to end: (rot(w*x))^2, rescaled."""
        ev, encoder, params = env["evaluator"], env["encoder"], env["params"]
        level = fresh_batch(env, count=1)[0].level
        weights = encoder.encode(
            np.full(params.slot_count, 0.5), level=level
        )

        def circuit(ct):
            y = ev.rescale(ev.multiply_plain(ct, weights))
            return ev.rescale(ev.square(ev.rotate(y, 1)))

        self._roundtrip(env, circuit)


# ---------------------------------------------------------------------------
# Batched BSGS linear transforms
# ---------------------------------------------------------------------------


class TestBatchedTransforms:
    @pytest.fixture(scope="class")
    def transform(self, env):
        rng = np.random.default_rng(17)
        slots = env["params"].slot_count
        matrix = rng.uniform(-0.5, 0.5, (slots, slots))
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        assert set(required_rotation_steps(transform)) <= set(
            range(1, slots)
        )
        return transform

    @pytest.mark.parametrize("double_hoist", [False, True])
    def test_apply_batched_matches_sequential(self, env, transform, double_hoist):
        ev = env["evaluator"]
        cts = fresh_batch(env)
        sequential = [
            transform.apply(ev, ct, double_hoist=double_hoist) for ct in cts
        ]
        batched = unstack_ciphertext(
            transform.apply(
                ev, stack_ciphertexts(cts), double_hoist=double_hoist
            )
        )
        assert_bit_identical(sequential, batched)

    def test_apply_batch_helper(self, env, transform):
        ev = env["evaluator"]
        cts = fresh_batch(env, seed=9)
        sequential = [transform.apply(ev, ct) for ct in cts]
        assert_bit_identical(sequential, transform.apply_batch(ev, cts))

    def test_apply_batch_single_member(self, env, transform):
        ev = env["evaluator"]
        ct = fresh_batch(env, count=1)[0]
        assert_bit_identical(
            [transform.apply(ev, ct)], transform.apply_batch(ev, [ct])
        )

    def test_apply_batch_empty_rejected(self, env, transform):
        with pytest.raises(ParameterError):
            transform.apply_batch(env["evaluator"], [])


# ---------------------------------------------------------------------------
# Batch-aware operation counters
# ---------------------------------------------------------------------------


class TestBatchedCounters:
    def test_batched_ops_book_logical_operations(self, env):
        """A batched call counts B logical ops, so schedule models stay true."""
        ev = env["evaluator"]
        stacked = stack_ciphertexts(fresh_batch(env))
        ev.reset_operation_counts()
        ev.square(stacked)
        assert ev.operation_counts["he_mult"] == BATCH
        ev.reset_operation_counts()
        ev.rotate(stacked, 1)
        assert ev.operation_counts["rotate"] == BATCH
        ev.reset_operation_counts()
        ev.add(stacked, stacked)
        assert ev.operation_counts["he_add"] == BATCH

    def test_unbatched_ops_book_one(self, env):
        ev = env["evaluator"]
        ct = fresh_batch(env, count=1)[0]
        ev.reset_operation_counts()
        ev.square(ct)
        assert ev.operation_counts["he_mult"] == 1
