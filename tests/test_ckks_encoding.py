"""Tests for CKKS encoding (canonical embedding)."""

import numpy as np
import pytest

from repro.ckks import CkksEncoder, CkksParameters


@pytest.fixture(scope="module")
def setup(ckks_setup):
    return ckks_setup["params"], ckks_setup["encoder"]


class TestEncodeDecode:
    def test_roundtrip_complex(self, setup, rng):
        params, encoder = setup
        values = rng.uniform(-1, 1, params.slot_count) + 1j * rng.uniform(-1, 1, params.slot_count)
        decoded = encoder.decode(encoder.encode(values))
        assert np.abs(decoded - values).max() < 1e-4

    def test_roundtrip_real(self, setup, rng):
        params, encoder = setup
        values = rng.uniform(-10, 10, params.slot_count)
        decoded = encoder.decode(encoder.encode_real(values))
        assert np.abs(decoded.real - values).max() < 1e-3
        assert np.abs(decoded.imag).max() < 1e-3

    def test_short_vector_zero_padded(self, setup):
        params, encoder = setup
        decoded = encoder.decode(encoder.encode([1.0, 2.0, 3.0]))
        assert np.abs(decoded[:3] - np.array([1, 2, 3])).max() < 1e-4
        assert np.abs(decoded[3:]).max() < 1e-4

    def test_too_many_values_rejected(self, setup):
        params, encoder = setup
        with pytest.raises(ValueError):
            encoder.encode(np.ones(params.slot_count + 1))

    def test_scale_respected(self, setup):
        params, encoder = setup
        plaintext = encoder.encode([1.0], scale=2.0**15)
        assert plaintext.scale == 2.0**15
        assert np.abs(encoder.decode(plaintext)[0] - 1.0) < 1e-2

    def test_additivity(self, setup, rng):
        """encode(a) + encode(b) decodes to a + b (the scheme's homomorphism)."""
        params, encoder = setup
        a = rng.uniform(-1, 1, params.slot_count)
        b = rng.uniform(-1, 1, params.slot_count)
        summed = encoder.encode(a).poly.add(encoder.encode(b).poly)
        from repro.ckks.ciphertext import Plaintext

        decoded = encoder.decode(Plaintext(poly=summed, scale=params.scale, level=params.limbs))
        assert np.abs(decoded.real - (a + b)).max() < 1e-3

    def test_level_parameter(self, setup):
        params, encoder = setup
        plaintext = encoder.encode([1.0], level=2)
        assert plaintext.poly.limb_count == 2

    def test_rotation_exponents(self, setup):
        params, encoder = setup
        assert encoder.slot_rotation_exponent(1) == 5
        assert encoder.conjugation_exponent == 2 * params.degree - 1

    def test_larger_ring(self):
        params = CkksParameters.create(degree=128, limbs=2, log_q=28, scale_bits=22)
        encoder = CkksEncoder(params)
        values = np.linspace(-2, 2, params.slot_count)
        decoded = encoder.decode(encoder.encode_real(values))
        assert np.abs(decoded.real - values).max() < 1e-3
