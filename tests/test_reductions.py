"""Tests for Barrett, Montgomery and Shoup modular reduction (paper Alg. 1/4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory.barrett import (
    BarrettContext,
    barrett_reduce,
    barrett_reduce_vector,
    mulmod_barrett,
    mulmod_barrett_vector,
)
from repro.numtheory.montgomery import (
    MontgomeryContext,
    montgomery_reduce,
    montgomery_reduce_lazy,
    montgomery_reduce_vector,
    mulmod_montgomery,
    mulmod_montgomery_vector,
)
from repro.numtheory.primes import generate_ntt_prime
from repro.numtheory.shoup import ShoupContext, mulmod_shoup, mulmod_shoup_vector

Q28 = generate_ntt_prime(28, 4096)
Q30 = generate_ntt_prime(30, 1024)
MODULI = [Q28, Q30, 65537, 12289]


# ---------------------------------------------------------------------- Barrett
class TestBarrett:
    @pytest.mark.parametrize("q", MODULI)
    def test_scalar_reduce(self, q):
        context = BarrettContext.create(q)
        for value in (0, 1, q - 1, q, q + 1, q * q, (1 << 64) - 1):
            assert barrett_reduce(value, context) == value % q

    def test_rejects_negative(self):
        context = BarrettContext.create(Q28)
        with pytest.raises(ValueError):
            barrett_reduce(-1, context)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            BarrettContext.create(1)
        with pytest.raises(ValueError):
            BarrettContext.create(1 << 33)

    @pytest.mark.parametrize("q", MODULI)
    def test_vector_reduce_matches_scalar(self, q, rng):
        context = BarrettContext.create(q)
        values = rng.integers(0, 1 << 63, size=512, dtype=np.uint64) * 2 + 1
        expected = np.array([int(v) % q for v in values], dtype=np.uint64)
        assert np.array_equal(barrett_reduce_vector(values, context), expected)

    def test_mulmod_scalar(self):
        context = BarrettContext.create(Q28)
        assert mulmod_barrett(Q28 - 1, Q28 - 1, context) == ((Q28 - 1) ** 2) % Q28

    def test_mulmod_vector(self, rng):
        context = BarrettContext.create(Q28)
        a = rng.integers(0, Q28, size=256, dtype=np.uint64)
        b = rng.integers(0, Q28, size=256, dtype=np.uint64)
        expected = (a.astype(object) * b.astype(object)) % Q28
        assert np.array_equal(
            mulmod_barrett_vector(a, b, context), expected.astype(np.uint64)
        )

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_reduce_any_64bit(self, value):
        context = BarrettContext.create(Q28)
        assert barrett_reduce(value, context) == value % Q28


# ------------------------------------------------------------------- Montgomery
class TestMontgomery:
    @pytest.mark.parametrize("q", MODULI)
    def test_scalar_reduce(self, q):
        context = MontgomeryContext.create(q)
        r_inv = pow(1 << 32, -1, q)
        for value in (0, 1, q, q * 123457, q * (1 << 32) - 1):
            assert montgomery_reduce(value, context) == (value * r_inv) % q

    def test_lazy_range(self):
        context = MontgomeryContext.create(Q28)
        for value in (0, Q28 * (1 << 32) - 1, 12345678901234):
            lazy = montgomery_reduce_lazy(value, context)
            assert 0 <= lazy < 2 * Q28
            assert lazy % Q28 == (value * pow(1 << 32, -1, Q28)) % Q28

    def test_rejects_out_of_range(self):
        context = MontgomeryContext.create(Q28)
        with pytest.raises(ValueError):
            montgomery_reduce_lazy(Q28 << 32, context)

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext.create(2**20)

    def test_form_roundtrip(self):
        context = MontgomeryContext.create(Q28)
        for value in (0, 1, 17, Q28 - 1):
            assert context.from_montgomery(context.to_montgomery(value)) == value

    def test_mulmod_scalar(self):
        context = MontgomeryContext.create(Q28)
        assert mulmod_montgomery(123456, 654321, context) == (123456 * 654321) % Q28

    @pytest.mark.parametrize("q", MODULI)
    def test_vector_reduce_matches_scalar(self, q, rng):
        context = MontgomeryContext.create(q)
        values = rng.integers(0, q, size=512, dtype=np.uint64) * np.uint64(
            rng.integers(1, 1 << 31)
        )
        r_inv = pow(1 << 32, -1, q)
        expected = np.array([(int(v) * r_inv) % q for v in values], dtype=np.uint64)
        assert np.array_equal(montgomery_reduce_vector(values, context), expected)

    def test_vector_lazy_bound(self, rng):
        context = MontgomeryContext.create(Q28)
        values = rng.integers(0, Q28, size=256, dtype=np.uint64) * np.uint64(1 << 30)
        lazy = montgomery_reduce_vector(values, context, lazy=True)
        assert int(lazy.max()) < 2 * Q28

    def test_mulmod_vector_with_precomputed_form(self, rng):
        context = MontgomeryContext.create(Q28)
        a = rng.integers(0, Q28, size=128, dtype=np.uint64)
        b = rng.integers(0, Q28, size=128, dtype=np.uint64)
        a_mont = np.array([context.to_montgomery(int(x)) for x in a], dtype=np.uint64)
        expected = (a.astype(object) * b.astype(object)) % Q28
        assert np.array_equal(
            mulmod_montgomery_vector(a_mont, b, context), expected.astype(np.uint64)
        )

    @given(value=st.integers(min_value=0, max_value=Q28 * (1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_reduce(self, value):
        context = MontgomeryContext.create(Q28)
        assert montgomery_reduce(value, context) == (value * pow(1 << 32, -1, Q28)) % Q28


# ------------------------------------------------------------------------ Shoup
class TestShoup:
    def test_scalar(self):
        context = ShoupContext.create(123456789 % Q28, Q28)
        for x in (0, 1, Q28 - 1, 424242):
            assert mulmod_shoup(x, context) == (x * context.multiplier) % Q28

    def test_rejects_unreduced_operand(self):
        context = ShoupContext.create(5, Q28)
        with pytest.raises(ValueError):
            mulmod_shoup(Q28, context)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            ShoupContext.create(3, 1)

    @pytest.mark.parametrize("q", MODULI)
    def test_vector_matches_scalar(self, q, rng):
        w = int(rng.integers(1, q))
        context = ShoupContext.create(w, q)
        xs = rng.integers(0, q, size=512, dtype=np.uint64)
        expected = (xs.astype(object) * w) % q
        assert np.array_equal(
            mulmod_shoup_vector(xs, context), expected.astype(np.uint64)
        )

    @given(x=st.integers(min_value=0, max_value=Q28 - 1), w=st.integers(min_value=0, max_value=Q28 - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_shoup(self, x, w):
        context = ShoupContext.create(w, Q28)
        assert mulmod_shoup(x, context) == (x * w) % Q28


# ------------------------------------------------------ cross-algorithm agreement
class TestReductionAgreement:
    def test_all_three_agree(self, rng):
        """Barrett, Montgomery and Shoup must all compute the same product."""
        q = Q28
        barrett = BarrettContext.create(q)
        montgomery = MontgomeryContext.create(q)
        for _ in range(50):
            a = int(rng.integers(0, q))
            b = int(rng.integers(0, q))
            shoup = ShoupContext.create(a, q)
            expected = (a * b) % q
            assert mulmod_barrett(a, b, barrett) == expected
            assert mulmod_montgomery(a, b, montgomery) == expected
            assert mulmod_shoup(b, shoup) == expected
