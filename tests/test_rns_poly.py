"""Tests for RNS polynomials (limb-parallel ring elements)."""

import numpy as np
import pytest

from repro.numtheory.crt import RnsBasis
from repro.poly.negacyclic import negacyclic_convolve
from repro.poly.rns_poly import COEFF_DOMAIN, EVAL_DOMAIN, RnsPolynomial, ring_for


@pytest.fixture(scope="module")
def poly_pair(rns_basis, rng):
    big_q = rns_basis.modulus_product
    coeffs_a = [int(v) for v in rng.integers(0, 2**60, size=rns_basis.degree)]
    coeffs_b = [int(v) for v in rng.integers(0, 2**60, size=rns_basis.degree)]
    a = RnsPolynomial.from_int_coefficients([c % big_q for c in coeffs_a], rns_basis)
    b = RnsPolynomial.from_int_coefficients([c % big_q for c in coeffs_b], rns_basis)
    return a, b


class TestConstruction:
    def test_zero(self, rns_basis):
        zero = RnsPolynomial.zero(rns_basis)
        assert np.all(zero.residues == 0)
        assert zero.domain == COEFF_DOMAIN

    def test_shape_validation(self, rns_basis):
        with pytest.raises(ValueError):
            RnsPolynomial(rns_basis, np.zeros((2, 2), dtype=np.uint64))

    def test_bad_domain(self, rns_basis):
        with pytest.raises(ValueError):
            RnsPolynomial(
                rns_basis,
                np.zeros((rns_basis.size, rns_basis.degree), dtype=np.uint64),
                "weird",
            )

    def test_int_roundtrip(self, rns_basis, rng):
        coeffs = [int(v) % rns_basis.modulus_product for v in rng.integers(0, 2**62, size=rns_basis.degree)]
        poly = RnsPolynomial.from_int_coefficients(coeffs, rns_basis)
        assert poly.to_int_coefficients() == coeffs

    def test_signed_roundtrip(self, rns_basis):
        signed = np.array([-3, -1, 0, 2] * (rns_basis.degree // 4), dtype=np.int64)
        poly = RnsPolynomial.from_signed_coefficients(signed, rns_basis)
        assert poly.to_signed_coefficients() == signed.tolist()

    def test_wrong_length(self, rns_basis):
        with pytest.raises(ValueError):
            RnsPolynomial.from_int_coefficients([1, 2, 3], rns_basis)

    def test_ring_cache(self, rns_basis):
        r1 = ring_for(rns_basis.degree, rns_basis.moduli[0])
        r2 = ring_for(rns_basis.degree, rns_basis.moduli[0])
        assert r1 is r2


class TestArithmetic:
    def test_add_matches_integer_add(self, poly_pair, rns_basis):
        a, b = poly_pair
        big_q = rns_basis.modulus_product
        expected = [
            (x + y) % big_q
            for x, y in zip(a.to_int_coefficients(), b.to_int_coefficients())
        ]
        assert a.add(b).to_int_coefficients() == expected

    def test_sub_negate(self, poly_pair):
        a, b = poly_pair
        assert a.sub(b).add(b).to_int_coefficients() == a.to_int_coefficients()
        assert np.all(a.add(a.negate()).residues == 0)

    def test_scalar_mul(self, poly_pair, rns_basis):
        a, _ = poly_pair
        big_q = rns_basis.modulus_product
        expected = [(3 * c) % big_q for c in a.to_int_coefficients()]
        assert a.scalar_mul(3).to_int_coefficients() == expected

    def test_multiply_matches_schoolbook_per_limb(self, poly_pair, rns_basis):
        a, b = poly_pair
        product = a.multiply(b).to_coeff()
        for index, q in enumerate(rns_basis.moduli):
            expected = negacyclic_convolve(a.residues[index], b.residues[index], q)
            assert np.array_equal(product.residues[index], expected)

    def test_domain_mismatch_rejected(self, poly_pair):
        a, b = poly_pair
        with pytest.raises(ValueError):
            a.add(b.to_eval())

    def test_basis_mismatch_rejected(self, poly_pair, rns_basis):
        a, _ = poly_pair
        other = RnsPolynomial.zero(
            RnsBasis(moduli=rns_basis.moduli[:2], degree=rns_basis.degree)
        )
        with pytest.raises(ValueError):
            a.add(other)


class TestDomains:
    def test_eval_roundtrip(self, poly_pair):
        a, _ = poly_pair
        assert np.array_equal(a.to_eval().to_coeff().residues, a.residues)

    def test_to_eval_idempotent(self, poly_pair):
        a, _ = poly_pair
        eval_once = a.to_eval()
        assert np.array_equal(eval_once.to_eval().residues, eval_once.residues)

    def test_reconstruction_requires_coeff_domain(self, poly_pair):
        a, _ = poly_pair
        with pytest.raises(ValueError):
            a.to_eval().to_int_coefficients()


class TestLimbOperations:
    def test_keep_limbs(self, poly_pair):
        a, _ = poly_pair
        truncated = a.keep_limbs(2)
        assert truncated.limb_count == 2
        assert np.array_equal(truncated.residues, a.residues[:2])

    def test_keep_limbs_validation(self, poly_pair):
        a, _ = poly_pair
        with pytest.raises(ValueError):
            a.keep_limbs(0)
        with pytest.raises(ValueError):
            a.keep_limbs(a.limb_count + 1)

    def test_automorphism_limbwise(self, poly_pair):
        a, _ = poly_pair
        rotated = a.automorphism(5)
        for index in range(a.limb_count):
            expected = a.ring(index).automorphism(a.residues[index], 5)
            assert np.array_equal(rotated.residues[index], expected)
