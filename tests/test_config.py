"""Tests for the paper's parameter sets (Table IV) and CROSS configuration."""

import pytest

from repro.core.config import (
    DEFAULT_SET,
    PARAMETER_SETS,
    SecurityParams,
    chunks_per_word,
)


class TestParameterSets:
    def test_table4_values(self):
        assert PARAMETER_SETS["A"].degree == 2**12 and PARAMETER_SETS["A"].limbs == 4
        assert PARAMETER_SETS["B"].degree == 2**13 and PARAMETER_SETS["B"].limbs == 8
        assert PARAMETER_SETS["C"].degree == 2**14 and PARAMETER_SETS["C"].limbs == 15
        assert PARAMETER_SETS["D"].degree == 2**16 and PARAMETER_SETS["D"].limbs == 51

    def test_log_big_q_matches_table(self):
        # Table IV: Set A 109 bits ~ 4*28, Set D 1904 = 51 * ~37... the paper
        # states logQ as the product of limb count and limb width.
        assert PARAMETER_SETS["A"].log_big_q == 4 * 28
        assert PARAMETER_SETS["D"].log_big_q == 51 * 28

    def test_default_is_set_d(self):
        assert DEFAULT_SET is PARAMETER_SETS["D"]
        assert DEFAULT_SET.dnum == 3

    def test_aux_limbs(self):
        assert PARAMETER_SETS["D"].aux_limbs == 17
        assert PARAMETER_SETS["A"].aux_limbs == 2
        assert PARAMETER_SETS["D"].extended_limbs == 68

    def test_ciphertext_words(self):
        params = PARAMETER_SETS["A"]
        assert params.coefficients_per_ciphertext == 2 * 4 * 2**12

    def test_scaled(self):
        scaled = PARAMETER_SETS["D"].scaled(degree=64, limbs=3)
        assert scaled.degree == 64
        assert scaled.limbs == 3
        assert scaled.log_q == 28
        assert scaled.name.endswith("-scaled")

    def test_scaled_default_limbs(self):
        scaled = PARAMETER_SETS["D"].scaled(degree=128)
        assert scaled.limbs == 4


class TestChunksPerWord:
    def test_paper_default(self):
        assert chunks_per_word(28) == 4

    @pytest.mark.parametrize("log_q,expected", [(8, 1), (16, 2), (24, 3), (32, 4), (59, 8)])
    def test_various_widths(self, log_q, expected):
        assert chunks_per_word(log_q) == expected

    def test_wider_engine(self):
        assert chunks_per_word(28, precision_bits=16) == 2
