"""Tests for the Basis-Aligned Transformation matrix path (paper Alg. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bat import (
    bat_modmatmul,
    bat_modmatmul_left_known,
    bat_modmatmul_right_known,
    compile_left_operand,
    compile_right_operand,
    direct_scalar_bat,
    expand_runtime_left,
    expand_runtime_right,
)
from repro.core.chunks import chunk_decompose
from repro.numtheory.primes import generate_ntt_prime
from repro.poly.modmat import modmatmul

Q = generate_ntt_prime(28, 4096)


class TestDirectScalarBat:
    def test_block_encodes_shifted_values(self):
        value = 0x0ABCDEF1 % Q
        block = direct_scalar_bat(value, Q)
        for j in range(4):
            expected = chunk_decompose((value << (8 * j)) % Q, 4)
            assert np.array_equal(block[:, j], expected)

    def test_all_entries_are_bytes(self, rng):
        for _ in range(20):
            block = direct_scalar_bat(int(rng.integers(0, Q)), Q)
            assert int(block.max()) <= 255

    def test_reconstructs_product(self, rng):
        """sum_i (block @ chunks(b))_i * 2^(8i) == a*b (mod q)."""
        for _ in range(20):
            a = int(rng.integers(0, Q))
            b = int(rng.integers(0, Q))
            block = direct_scalar_bat(a, Q)
            b_chunks = chunk_decompose(b, 4)
            partial = block.astype(np.int64) @ b_chunks.astype(np.int64)
            merged = sum(int(partial[i]) << (8 * i) for i in range(4))
            assert merged % Q == (a * b) % Q


class TestCompiledOperands:
    def test_left_plan_shape_and_dtype_range(self, rng):
        matrix = rng.integers(0, Q, size=(3, 5), dtype=np.uint64)
        plan = compile_left_operand(matrix, Q)
        assert plan.compiled.shape == (12, 20)
        assert int(plan.compiled.max()) <= 255
        assert plan.side == "left"

    def test_right_plan_shape(self, rng):
        matrix = rng.integers(0, Q, size=(5, 3), dtype=np.uint64)
        plan = compile_right_operand(matrix, Q)
        assert plan.compiled.shape == (20, 12)
        assert plan.side == "right"

    def test_accumulator_bits_bound(self, rng):
        matrix = rng.integers(0, Q, size=(4, 256), dtype=np.uint64)
        plan = compile_left_operand(matrix, Q)
        # 2*8 + log2(4*256) = 26 bits: fits the MXU's 32-bit accumulators.
        assert plan.accumulator_bits <= 32

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            compile_left_operand(np.zeros(4, dtype=np.uint64), Q)
        with pytest.raises(ValueError):
            compile_right_operand(np.zeros(4, dtype=np.uint64), Q)

    def test_runtime_expansion_shapes(self, rng):
        matrix = rng.integers(0, Q, size=(5, 3), dtype=np.uint64)
        left_plan = compile_left_operand(matrix.T.copy(), Q)
        expanded_right = expand_runtime_right(matrix, left_plan)
        assert expanded_right.shape == (20, 3)
        right_plan = compile_right_operand(matrix, Q)
        expanded_left = expand_runtime_left(matrix.T.copy(), right_plan)
        assert expanded_left.shape == (3, 20)

    def test_wrong_side_rejected(self, rng):
        matrix = rng.integers(0, Q, size=(3, 3), dtype=np.uint64)
        left_plan = compile_left_operand(matrix, Q)
        right_plan = compile_right_operand(matrix, Q)
        with pytest.raises(ValueError):
            bat_modmatmul_right_known(matrix, left_plan)
        with pytest.raises(ValueError):
            bat_modmatmul_left_known(right_plan, matrix)


class TestBatMatmulEquivalence:
    @pytest.mark.parametrize("reduction", ["exact", "barrett", "montgomery"])
    @pytest.mark.parametrize("known", ["left", "right"])
    def test_matches_reference(self, reduction, known, rng):
        a = rng.integers(0, Q, size=(6, 9), dtype=np.uint64)
        b = rng.integers(0, Q, size=(9, 7), dtype=np.uint64)
        expected = modmatmul(a, b, Q)
        result = bat_modmatmul(a, b, Q, known=known, reduction=reduction)
        assert np.array_equal(result, expected)

    def test_reusing_a_compiled_plan(self, rng):
        """One offline compilation serves many runtime operands (the BAT point)."""
        twiddles = rng.integers(0, Q, size=(8, 8), dtype=np.uint64)
        plan = compile_left_operand(twiddles, Q, reduction="montgomery")
        for _ in range(5):
            data = rng.integers(0, Q, size=(8, 4), dtype=np.uint64)
            assert np.array_equal(
                bat_modmatmul_left_known(plan, data), modmatmul(twiddles, data, Q)
            )

    def test_large_inner_dimension_accumulator(self, rng):
        """KV = 1024 keeps the accumulator below 32 bits and stays exact."""
        a = rng.integers(0, Q, size=(2, 256), dtype=np.uint64)
        b = rng.integers(0, Q, size=(256, 3), dtype=np.uint64)
        plan = compile_left_operand(a, Q)
        assert plan.accumulator_bits <= 32
        assert np.array_equal(bat_modmatmul_left_known(plan, b), modmatmul(a, b, Q))

    def test_identity_matrix(self, rng):
        identity = np.eye(5, dtype=np.uint64)
        b = rng.integers(0, Q, size=(5, 5), dtype=np.uint64)
        assert np.array_equal(bat_modmatmul(identity, b, Q, known="left"), b)

    def test_matvec_shape(self, rng):
        a = rng.integers(0, Q, size=(4, 4), dtype=np.uint64)
        b = rng.integers(0, Q, size=(4, 1), dtype=np.uint64)
        assert bat_modmatmul(a, b, Q).shape == (4, 1)

    @given(
        h=st.integers(min_value=1, max_value=5),
        v=st.integers(min_value=1, max_value=6),
        w=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_shapes(self, h, v, w, seed):
        local_rng = np.random.default_rng(seed)
        a = local_rng.integers(0, Q, size=(h, v), dtype=np.uint64)
        b = local_rng.integers(0, Q, size=(v, w), dtype=np.uint64)
        assert np.array_equal(bat_modmatmul(a, b, Q, known="left"), modmatmul(a, b, Q))

    def test_unknown_reduction_rejected(self, rng):
        a = rng.integers(0, Q, size=(2, 2), dtype=np.uint64)
        b = rng.integers(0, Q, size=(2, 2), dtype=np.uint64)
        plan = compile_left_operand(a, Q)
        object.__setattr__(plan, "reduction", "bogus")
        with pytest.raises(ValueError):
            bat_modmatmul_left_known(plan, b)
