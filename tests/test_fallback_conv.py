"""Tests for the 1-D-convolution fallback multiplication (paper Appendix H)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import chunk_decompose
from repro.core.fallback_conv import chunkwise_convolution, convolution_modmul
from repro.numtheory.primes import generate_ntt_prime

Q = generate_ntt_prime(28, 4096)


class TestChunkwiseConvolution:
    def test_partial_sum_count(self, rng):
        a = chunk_decompose(int(rng.integers(0, Q)), 4)
        b = chunk_decompose(int(rng.integers(0, Q)), 4)
        partial = chunkwise_convolution(a, b)
        assert partial.shape == (7,)

    def test_partial_sum_bound(self, rng):
        """Each partial sum fits in 2*bp + log2(K) = 18 bits (paper Fig. 16)."""
        a = np.full(4, 255, dtype=np.uint64)
        partial = chunkwise_convolution(a, a)
        assert int(partial.max()) < 1 << 18

    def test_reconstructs_product(self, rng):
        a_val = int(rng.integers(0, Q))
        b_val = int(rng.integers(0, Q))
        partial = chunkwise_convolution(chunk_decompose(a_val, 4), chunk_decompose(b_val, 4))
        merged = sum(int(partial[i]) << (8 * i) for i in range(7))
        assert merged == a_val * b_val

    def test_mismatched_chunks_rejected(self):
        with pytest.raises(ValueError):
            chunkwise_convolution(np.zeros(4, dtype=np.uint64), np.zeros(3, dtype=np.uint64))


class TestConvolutionModMul:
    def test_vector_exactness(self, rng):
        a = rng.integers(0, Q, size=3000, dtype=np.uint64)
        b = rng.integers(0, Q, size=3000, dtype=np.uint64)
        expected = (a.astype(object) * b.astype(object)) % Q
        assert np.array_equal(convolution_modmul(a, b, Q), expected.astype(np.uint64))

    def test_matrix_shape_preserved(self, rng):
        a = rng.integers(0, Q, size=(6, 9), dtype=np.uint64)
        b = rng.integers(0, Q, size=(6, 9), dtype=np.uint64)
        result = convolution_modmul(a, b, Q)
        assert result.shape == (6, 9)
        assert np.array_equal(result, (a.astype(object) * b.astype(object) % Q).astype(np.uint64))

    def test_edge_values(self):
        a = np.array([0, 1, Q - 1, Q - 1], dtype=np.uint64)
        b = np.array([Q - 1, Q - 1, Q - 1, 0], dtype=np.uint64)
        expected = (a.astype(object) * b.astype(object)) % Q
        assert np.array_equal(convolution_modmul(a, b, Q), expected.astype(np.uint64))

    @given(
        a=st.integers(min_value=0, max_value=Q - 1),
        b=st.integers(min_value=0, max_value=Q - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_scalar(self, a, b):
        result = convolution_modmul(
            np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64), Q
        )
        assert int(result[0]) == (a * b) % Q
