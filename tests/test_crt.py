"""Tests for CRT composition/decomposition and the RnsBasis container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory.crt import RnsBasis, crt_compose, crt_decompose, garner_compose

MODULI = [97, 101, 103, 107]
PRODUCT = 97 * 101 * 103 * 107


class TestCrtFunctions:
    def test_roundtrip(self):
        value = 123456789
        residues = crt_decompose(value, MODULI)
        assert crt_compose(residues, MODULI) == value % PRODUCT

    def test_garner_matches_crt(self):
        value = 987654321
        residues = crt_decompose(value, MODULI)
        assert garner_compose(residues, MODULI) == crt_compose(residues, MODULI)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crt_compose([1, 2], MODULI)
        with pytest.raises(ValueError):
            garner_compose([1, 2], MODULI)

    @given(value=st.integers(min_value=0, max_value=PRODUCT - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, value):
        assert crt_compose(crt_decompose(value, MODULI), MODULI) == value

    @given(value=st.integers(min_value=0, max_value=PRODUCT - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_garner_roundtrip(self, value):
        assert garner_compose(crt_decompose(value, MODULI), MODULI) == value


class TestRnsBasis:
    def test_generation(self, rns_basis):
        assert rns_basis.size == 4
        assert len(set(rns_basis.moduli)) == 4
        assert all(q % (2 * rns_basis.degree) == 1 for q in rns_basis.moduli)

    def test_modulus_product(self, rns_basis):
        product = 1
        for q in rns_basis.moduli:
            product *= q
        assert rns_basis.modulus_product == product

    def test_hat_inverse_property(self, rns_basis):
        big_q = rns_basis.modulus_product
        for i, q in enumerate(rns_basis.moduli):
            hat = big_q // q
            assert (hat * rns_basis.hat_inverse(i)) % q == 1

    def test_hat_modulo(self, rns_basis):
        big_q = rns_basis.modulus_product
        for i, q in enumerate(rns_basis.moduli):
            assert rns_basis.hat_modulo(i, 65537) == (big_q // q) % 65537

    def test_compose_decompose(self, rns_basis, rng):
        value = int(rng.integers(0, 2**60))
        assert rns_basis.compose(rns_basis.decompose(value)) == value

    def test_decompose_array_shape(self, rns_basis):
        values = [1, 2, 3, 4, 5]
        matrix = rns_basis.decompose_array(values)
        assert matrix.shape == (rns_basis.size, 5)

    def test_compose_array_roundtrip(self, rns_basis, rng):
        values = [int(v) for v in rng.integers(0, 2**50, size=8)]
        matrix = rns_basis.decompose_array(values)
        assert rns_basis.compose_array(matrix) == values

    def test_compose_array_shape_check(self, rns_basis):
        with pytest.raises(ValueError):
            rns_basis.compose_array(np.zeros((2, 3), dtype=np.uint64))

    def test_drop_last(self, rns_basis):
        smaller = rns_basis.drop_last()
        assert smaller.size == rns_basis.size - 1
        assert smaller.moduli == rns_basis.moduli[:-1]
        with pytest.raises(ValueError):
            rns_basis.drop_last(rns_basis.size)

    def test_extend(self, rns_basis):
        extra = RnsBasis.generate(2, 26, rns_basis.degree)
        extended = rns_basis.extend(extra)
        assert extended.size == rns_basis.size + 2
        assert extended.moduli[: rns_basis.size] == rns_basis.moduli

    def test_extend_degree_mismatch(self, rns_basis):
        other = RnsBasis.generate(1, 28, rns_basis.degree * 2)
        with pytest.raises(ValueError):
            rns_basis.extend(other)

    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis(moduli=(97, 97), degree=8)

    def test_empty_basis_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis(moduli=(), degree=8)
