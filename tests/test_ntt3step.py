"""Tests for the layout-invariant 3-step NTT (MAT + BAT), the paper's Fig. 10."""

import numpy as np
import pytest

from repro.core.ntt3step import ThreeStepNttPlan, default_tile_shape
from repro.poly.negacyclic import negacyclic_convolve


def make_plan(ring, rows=8, cols=8, **kwargs):
    return ThreeStepNttPlan(
        degree=ring.degree, modulus=ring.modulus, psi=ring.psi, rows=rows, cols=cols, **kwargs
    )


class TestTileShape:
    def test_large_degree_pins_lanes(self):
        assert default_tile_shape(2**16) == (128, 512)
        assert default_tile_shape(2**12) == (128, 32)

    def test_small_degree_squarish(self):
        assert default_tile_shape(64) == (8, 8)
        assert default_tile_shape(128) == (8, 16)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            default_tile_shape(100)


class TestPlanConstruction:
    def test_shape_validation(self, ring):
        with pytest.raises(ValueError):
            make_plan(ring, rows=8, cols=16)

    def test_bad_output_order(self, ring):
        with pytest.raises(ValueError):
            make_plan(ring, output_order="weird")

    def test_evaluation_permutation_is_permutation(self, ring):
        plan = make_plan(ring)
        perm = plan.evaluation_permutation
        assert sorted(perm.tolist()) == list(range(ring.degree))


class TestForwardInverse:
    @pytest.mark.parametrize("use_bat", [False, True])
    @pytest.mark.parametrize("output_order", ["cross", "bitrev"])
    def test_matches_reference_under_permutation(self, ring, rng, use_bat, output_order):
        plan = make_plan(ring, use_bat=use_bat, output_order=output_order,
                         reduction="montgomery")
        coeffs = ring.random_uniform(rng)
        reference = ring.ntt(coeffs)
        layout = plan.forward(coeffs)
        assert np.array_equal(layout, reference[plan.evaluation_permutation])
        assert np.array_equal(plan.to_reference_order(layout), reference)
        assert np.array_equal(plan.from_reference_order(reference), layout)

    @pytest.mark.parametrize("use_bat", [False, True])
    def test_inverse_roundtrip(self, ring, rng, use_bat):
        plan = make_plan(ring, use_bat=use_bat, reduction="barrett")
        coeffs = ring.random_uniform(rng)
        assert np.array_equal(plan.inverse(plan.forward(coeffs)), coeffs)

    @pytest.mark.parametrize("rows,cols", [(4, 16), (16, 4), (8, 8), (2, 32)])
    def test_all_tile_shapes(self, ring, rng, rows, cols):
        plan = make_plan(ring, rows=rows, cols=cols)
        coeffs = ring.random_uniform(rng)
        assert np.array_equal(
            plan.to_reference_order(plan.forward(coeffs)), ring.ntt(coeffs)
        )

    def test_wrong_length_rejected(self, ring):
        plan = make_plan(ring)
        with pytest.raises(ValueError):
            plan.forward(np.zeros(32, dtype=np.uint64))
        with pytest.raises(ValueError):
            plan.inverse(np.zeros(32, dtype=np.uint64))

    def test_batch_interface(self, ring, rng):
        plan = make_plan(ring)
        batch = np.stack([ring.random_uniform(rng) for _ in range(3)])
        forward = plan.forward_batch(batch)
        assert forward.shape == batch.shape
        assert np.array_equal(plan.inverse_batch(forward), batch)


class TestLayoutInvariantMultiplication:
    """Pointwise multiplication in the MAT layout realises negacyclic convolution."""

    @pytest.mark.parametrize("use_bat", [False, True])
    def test_convolution_through_layout_domain(self, ring, rng, use_bat):
        plan = make_plan(ring, use_bat=use_bat, reduction="montgomery")
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        a_layout = plan.forward(a)
        b_layout = plan.forward(b)
        product_layout = (a_layout * b_layout) % np.uint64(ring.modulus)
        product = plan.inverse(product_layout)
        assert np.array_equal(product, negacyclic_convolve(a, b, ring.modulus))

    def test_cross_and_bitrev_orders_hold_same_values(self, ring, rng):
        coeffs = ring.random_uniform(rng)
        cross = make_plan(ring, output_order="cross")
        bitrev = make_plan(ring, output_order="bitrev")
        assert np.array_equal(
            cross.to_reference_order(cross.forward(coeffs)),
            bitrev.to_reference_order(bitrev.forward(coeffs)),
        )

    def test_bat_and_exact_paths_identical(self, ring, rng):
        """BAT is a lossless transformation: identical outputs, bit for bit."""
        coeffs = ring.random_uniform(rng)
        exact_plan = make_plan(ring, use_bat=False)
        bat_plan = make_plan(ring, use_bat=True, reduction="barrett")
        assert np.array_equal(exact_plan.forward(coeffs), bat_plan.forward(coeffs))
