"""Tests for the reference radix-2 negacyclic NTT."""

import numpy as np
import pytest

from repro.poly.negacyclic import negacyclic_convolve, poly_add
from repro.poly.ntt_reference import (
    negacyclic_evaluate_direct,
    ntt_forward_negacyclic,
    ntt_inverse_negacyclic,
    ntt_multiply,
    ntt_pointwise_multiply,
)


class TestForwardInverse:
    def test_roundtrip(self, ring, rng):
        a = ring.random_uniform(rng)
        forward = ntt_forward_negacyclic(a, ring.modulus, ring.psi)
        assert np.array_equal(
            ntt_inverse_negacyclic(forward, ring.modulus, ring.psi), a
        )

    def test_matches_direct_evaluation(self, ring, rng):
        a = ring.random_uniform(rng)
        fast = ntt_forward_negacyclic(a, ring.modulus, ring.psi)
        direct = negacyclic_evaluate_direct(a, ring.modulus, ring.psi)
        assert np.array_equal(fast, direct)

    def test_linear(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        lhs = ntt_forward_negacyclic(
            poly_add(a, b, ring.modulus), ring.modulus, ring.psi
        )
        rhs = poly_add(
            ntt_forward_negacyclic(a, ring.modulus, ring.psi),
            ntt_forward_negacyclic(b, ring.modulus, ring.psi),
            ring.modulus,
        )
        assert np.array_equal(lhs, rhs)

    def test_constant_polynomial(self, ring):
        a = ring.zeros()
        a[0] = 7
        forward = ntt_forward_negacyclic(a, ring.modulus, ring.psi)
        assert np.all(forward == 7)

    def test_zero(self, ring):
        zero = ring.zeros()
        assert np.all(ntt_forward_negacyclic(zero, ring.modulus, ring.psi) == 0)

    def test_rejects_non_power_of_two(self, ring):
        with pytest.raises(ValueError):
            ntt_forward_negacyclic(np.zeros(48, dtype=np.uint64), ring.modulus, ring.psi)

    def test_batched_input(self, ring, rng):
        batch = np.stack([ring.random_uniform(rng) for _ in range(3)])
        forward = ntt_forward_negacyclic(batch, ring.modulus, ring.psi)
        for row_in, row_out in zip(batch, forward):
            assert np.array_equal(
                ntt_forward_negacyclic(row_in, ring.modulus, ring.psi), row_out
            )


class TestConvolutionTheorem:
    def test_pointwise_equals_schoolbook(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        fast = ntt_multiply(a, b, ring.modulus, ring.psi)
        slow = negacyclic_convolve(a, b, ring.modulus)
        assert np.array_equal(fast, slow)

    def test_pointwise_multiply(self, ring, rng):
        a = rng.integers(0, ring.modulus, size=16, dtype=np.uint64)
        b = rng.integers(0, ring.modulus, size=16, dtype=np.uint64)
        expected = (a.astype(object) * b.astype(object)) % ring.modulus
        assert np.array_equal(
            ntt_pointwise_multiply(a, b, ring.modulus), expected.astype(np.uint64)
        )

    @pytest.mark.parametrize("degree_exp", [3, 4, 5, 7])
    def test_multiple_sizes(self, degree_exp, rng):
        from repro.numtheory.primes import generate_ntt_prime
        from repro.numtheory.modular import primitive_nth_root_of_unity

        degree = 1 << degree_exp
        q = generate_ntt_prime(24, degree)
        psi = primitive_nth_root_of_unity(2 * degree, q)
        a = rng.integers(0, q, size=degree, dtype=np.uint64)
        b = rng.integers(0, q, size=degree, dtype=np.uint64)
        assert np.array_equal(
            ntt_multiply(a, b, q, psi), negacyclic_convolve(a, b, q)
        )
