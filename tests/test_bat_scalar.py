"""Tests for scalar BAT (paper Fig. 7 / Alg. 5) and the sparse GPU baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sparse_toeplitz import (
    SparseCompiledScalar,
    sparse_matvec_modmul,
    sparse_toeplitz_matrix,
    toeplitz_zero_fraction,
)
from repro.core.bat_scalar import (
    CompiledScalar,
    carry_propagation,
    construct_toeplitz,
    hp_scalar_mult_bat,
    offline_compile_scalar,
)
from repro.core.chunks import chunk_decompose
from repro.numtheory.primes import generate_ntt_prime

Q = generate_ntt_prime(28, 4096)


class TestToeplitz:
    def test_structure(self):
        chunks = np.array([1, 2, 3, 4], dtype=np.uint64)
        matrix = construct_toeplitz(chunks)
        assert matrix.shape == (7, 4)
        for j in range(4):
            assert np.array_equal(matrix[j:j + 4, j], chunks)

    def test_zero_fraction_matches_paper(self):
        # The paper reports ~43% zeros for K = 4 (12 of 28 entries).
        assert toeplitz_zero_fraction(4) == pytest.approx(12 / 28)

    def test_sparse_matrix_builder(self):
        matrix = sparse_toeplitz_matrix(0x01020304 % Q, Q)
        assert matrix.shape == (7, 4)


class TestCarryPropagation:
    def test_simple_carry(self):
        matrix = np.array([[300], [0], [0]], dtype=np.uint64)
        propagated = carry_propagation(matrix)
        assert propagated[0, 0] == 300 - 256
        assert propagated[1, 0] == 1

    def test_no_carry_needed(self):
        matrix = np.array([[10, 20], [30, 40]], dtype=np.uint64)
        assert np.array_equal(carry_propagation(matrix), matrix)

    def test_preserves_column_value(self, rng):
        matrix = rng.integers(0, 1 << 12, size=(5, 3), dtype=np.uint64)
        propagated = carry_propagation(matrix)
        for col in range(3):
            original = sum(int(matrix[r, col]) << (8 * r) for r in range(5))
            carried = sum(int(propagated[r, col]) << (8 * r) for r in range(5))
            assert original == carried


class TestOfflineCompile:
    def test_dense_and_byte_valued(self, rng):
        for _ in range(10):
            compiled = offline_compile_scalar(int(rng.integers(0, Q)), Q)
            assert compiled.shape == (4, 4)
            assert int(compiled.max()) <= 255

    def test_compiled_matrix_reconstructs_product(self, rng):
        for _ in range(20):
            a = int(rng.integers(0, Q))
            b = int(rng.integers(0, Q))
            matrix = offline_compile_scalar(a, Q)
            b_chunks = chunk_decompose(b, 4)
            partial = matrix.astype(np.int64) @ b_chunks.astype(np.int64)
            merged = sum(int(partial[i]) << (8 * i) for i in range(4))
            assert merged % Q == (a * b) % Q

    def test_zero_value(self):
        assert np.all(offline_compile_scalar(0, Q) == 0)


class TestScalarMultiplication:
    @given(
        a=st.integers(min_value=0, max_value=Q - 1),
        b=st.integers(min_value=0, max_value=Q - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bat_exact(self, a, b):
        assert hp_scalar_mult_bat(a, b, Q) == (a * b) % Q

    @given(
        a=st.integers(min_value=0, max_value=Q - 1),
        b=st.integers(min_value=0, max_value=Q - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_sparse_baseline_exact(self, a, b):
        assert sparse_matvec_modmul(a, b, Q) == (a * b) % Q

    def test_bat_and_sparse_agree(self, rng):
        """BAT removes redundancy but must compute the identical product."""
        for _ in range(30):
            a = int(rng.integers(0, Q))
            b = int(rng.integers(0, Q))
            assert hp_scalar_mult_bat(a, b, Q) == sparse_matvec_modmul(a, b, Q)

    def test_compiled_scalar_reuse(self, rng):
        a = int(rng.integers(0, Q))
        bat = CompiledScalar.compile(a, Q)
        sparse = SparseCompiledScalar.compile(a, Q)
        for _ in range(10):
            b = int(rng.integers(0, Q))
            assert bat.multiply(b) == (a * b) % Q
            assert sparse.multiply(b) == (a * b) % Q

    def test_compiled_sizes_match_paper_claim(self, rng):
        """BAT's operand is K x K dense; the GPU baseline's is (2K-1) x K sparse."""
        a = int(rng.integers(1, Q))
        bat = CompiledScalar.compile(a, Q)
        sparse = SparseCompiledScalar.compile(a, Q)
        assert bat.matrix.size == 16
        assert sparse.matrix.size == 28
        assert bat.matrix.size / sparse.matrix.size == pytest.approx(4 / 7)
