"""Tests for the chunked exact modular matrix multiplication helper."""

import numpy as np
import pytest

from repro.poly.modmat import modmatmul, modmatvec


class TestModMatMul:
    def test_matches_object_arithmetic(self, prime, rng):
        a = rng.integers(0, prime, size=(7, 11), dtype=np.uint64)
        b = rng.integers(0, prime, size=(11, 5), dtype=np.uint64)
        expected = (a.astype(object) @ b.astype(object)) % prime
        assert np.array_equal(modmatmul(a, b, prime), expected.astype(np.uint64))

    def test_large_inner_dimension(self, prime, rng):
        # Inner dimension larger than the safe chunk (forces chunked reduction).
        a = rng.integers(0, prime, size=(3, 1000), dtype=np.uint64)
        b = rng.integers(0, prime, size=(1000, 2), dtype=np.uint64)
        expected = (a.astype(object) @ b.astype(object)) % prime
        assert np.array_equal(modmatmul(a, b, prime), expected.astype(np.uint64))

    def test_identity(self, prime, rng):
        a = rng.integers(0, prime, size=(6, 6), dtype=np.uint64)
        identity = np.eye(6, dtype=np.uint64)
        assert np.array_equal(modmatmul(a, identity, prime), a)

    def test_shape_mismatch(self, prime):
        with pytest.raises(ValueError):
            modmatmul(np.zeros((2, 3)), np.zeros((4, 2)), prime)

    def test_unreduced_inputs_are_reduced(self, prime):
        a = np.array([[prime + 1]], dtype=np.uint64)
        b = np.array([[prime + 2]], dtype=np.uint64)
        assert modmatmul(a, b, prime)[0, 0] == 2

    def test_large_modulus_small_chunk(self, rng):
        q = (1 << 30) + 3  # not prime, but modmatmul only needs a modulus
        a = rng.integers(0, q, size=(4, 300), dtype=np.uint64)
        b = rng.integers(0, q, size=(300, 4), dtype=np.uint64)
        expected = (a.astype(object) @ b.astype(object)) % q
        assert np.array_equal(modmatmul(a, b, q), expected.astype(np.uint64))

    def test_matvec(self, prime, rng):
        matrix = rng.integers(0, prime, size=(5, 9), dtype=np.uint64)
        vector = rng.integers(0, prime, size=9, dtype=np.uint64)
        expected = (matrix.astype(object) @ vector.astype(object)) % prime
        result = modmatvec(matrix, vector, prime)
        assert result.shape == (5,)
        assert np.array_equal(result, expected.astype(np.uint64))
