"""Integration tests: CROSS's compiled kernels inside full HE pipelines.

These tests thread the BAT/MAT machinery through multi-module pipelines --
RNS polynomials, basis conversion and the functional MXU model -- to verify
the paper's core claim that the transformations are lossless end to end.
"""

import numpy as np
import pytest

from repro.core.bat import compile_left_operand, expand_runtime_right
from repro.core.ntt3step import ThreeStepNttPlan
from repro.numtheory.crt import RnsBasis
from repro.poly.basis_conversion import BasisConversion
from repro.poly.modmat import modmatmul
from repro.poly.negacyclic import negacyclic_convolve
from repro.poly.rns_poly import RnsPolynomial, ring_for
from repro.tpu.mxu import MatrixUnit


class TestRnsMultiplicationThroughThreeStepNtt:
    """Full RNS polynomial multiplication with every limb using the MAT+BAT NTT."""

    def test_limbwise_product_matches_schoolbook(self, rns_basis, rng):
        degree = rns_basis.degree
        plans = {
            q: ThreeStepNttPlan(
                degree=degree,
                modulus=q,
                psi=ring_for(degree, q).psi,
                rows=8,
                cols=8,
                use_bat=True,
                reduction="montgomery",
            )
            for q in rns_basis.moduli
        }
        a = RnsPolynomial.from_int_coefficients(
            [int(v) % rns_basis.modulus_product for v in rng.integers(0, 2**60, size=degree)],
            rns_basis,
        )
        b = RnsPolynomial.from_int_coefficients(
            [int(v) % rns_basis.modulus_product for v in rng.integers(0, 2**60, size=degree)],
            rns_basis,
        )
        product_rows = []
        for index, q in enumerate(rns_basis.moduli):
            plan = plans[q]
            a_eval = plan.forward(a.residues[index])
            b_eval = plan.forward(b.residues[index])
            product_rows.append(plan.inverse((a_eval * b_eval) % np.uint64(q)))
        via_cross = np.stack(product_rows, axis=0)
        expected = a.multiply(b).to_coeff().residues
        assert np.array_equal(via_cross, expected)


class TestBconvStep2OnFunctionalMxu:
    """BConv's step-2 matmul executed through BAT on the functional MXU model."""

    def test_bat_bconv_matches_reference(self, rns_basis, rng):
        target = RnsBasis.generate(5, 30, rns_basis.degree)
        conversion = BasisConversion(source=rns_basis, target=target)
        poly = RnsPolynomial.from_int_coefficients(
            [int(v) % rns_basis.modulus_product for v in rng.integers(0, 2**59, size=rns_basis.degree)],
            rns_basis,
        )
        scaled = conversion.step1(poly.residues)
        reference = conversion.step2(scaled)

        mxu = MatrixUnit(systolic_dim=128)
        for j, p_j in enumerate(target.moduli):
            row_constants = conversion.conversion_matrix[j:j + 1, :] % np.uint64(p_j)
            plan = compile_left_operand(row_constants, int(p_j))
            expanded = expand_runtime_right(scaled % np.uint64(p_j), plan)
            chunk_sums, stats = mxu.multiply(plan.compiled, expanded)
            assert stats.max_accumulator_bits <= 32
            merged = np.zeros(scaled.shape[1], dtype=np.uint64)
            for i in range(plan.num_chunks):
                merged += chunk_sums[i].astype(np.uint64) << np.uint64(8 * i)
            assert np.array_equal(merged % np.uint64(p_j), reference[j])


class TestCompiledTwiddleReuse:
    """One offline BAT compilation of the twiddle matrix serves a whole batch."""

    def test_batch_of_polynomials(self, ring, rng):
        plan = ThreeStepNttPlan(
            degree=ring.degree, modulus=ring.modulus, psi=ring.psi, rows=8, cols=8,
            use_bat=True, reduction="barrett",
        )
        batch = np.stack([ring.random_uniform(rng) for _ in range(4)])
        outputs = plan.forward_batch(batch)
        for row_in, row_out in zip(batch, outputs):
            assert np.array_equal(plan.to_reference_order(row_out), ring.ntt(row_in))


class TestNegacyclicProductViaBatMatmulOnly:
    """A full negacyclic product computed with nothing but BAT matmuls.

    The NTT matrices, the point-wise twiddles and the inverse all execute as
    dense int8 matrix multiplications plus byte bookkeeping -- exactly the
    instruction mix CROSS issues to the MXU.
    """

    def test_matches_schoolbook(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        plan = ThreeStepNttPlan(
            degree=ring.degree, modulus=ring.modulus, psi=ring.psi, rows=8, cols=8,
            use_bat=True, reduction="montgomery",
        )
        a_eval = plan.forward(a)
        b_eval = plan.forward(b)
        product = plan.inverse((a_eval * b_eval) % np.uint64(ring.modulus))
        assert np.array_equal(product, negacyclic_convolve(a, b, ring.modulus))


class TestMatmulPrecisionInvariants:
    """The BAT accumulator-width claim (2*bp + log2(KV) bits) holds in practice."""

    @pytest.mark.parametrize("inner", [16, 64, 256])
    def test_accumulator_width(self, inner, prime, rng):
        a = rng.integers(0, prime, size=(4, inner), dtype=np.uint64)
        b = rng.integers(0, prime, size=(inner, 8), dtype=np.uint64)
        plan = compile_left_operand(a, prime)
        expanded = expand_runtime_right(b, plan)
        mxu = MatrixUnit()
        _, stats = mxu.multiply(plan.compiled, expanded)
        assert stats.max_accumulator_bits <= plan.accumulator_bits
        assert plan.accumulator_bits <= 32
        assert np.array_equal(
            modmatmul(a, b, prime),
            __import__("repro.core.bat", fromlist=["bat_modmatmul_left_known"]).bat_modmatmul_left_known(plan, b),
        )
