"""Tests for Memory-Aligned Transformation permutation embedding."""

import numpy as np
import pytest

from repro.core.mat import (
    embed_permutation_into_cols,
    embed_permutation_into_rows,
    fold_elementwise_permutation,
    fuse_permutations,
    permute_vector,
    transpose_stride_permutation,
)
from repro.numtheory.bitrev import bit_reverse_indices, permutation_matrix
from repro.poly.modmat import modmatmul

Q = 65537


class TestPermutationEmbedding:
    def test_row_embedding_equals_runtime_permute(self, rng):
        """MAT's core claim (Fig. 9): P(M @ x) == (P-embedded M) @ x."""
        matrix = rng.integers(0, Q, size=(16, 16), dtype=np.uint64)
        x = rng.integers(0, Q, size=(16, 1), dtype=np.uint64)
        perm = rng.permutation(16)
        runtime = permute_vector(modmatmul(matrix, x, Q).reshape(-1), perm)
        embedded = modmatmul(embed_permutation_into_rows(matrix, perm), x, Q).reshape(-1)
        assert np.array_equal(runtime, embedded)

    def test_col_embedding_consumes_permuted_input(self, rng):
        """M @ x == (col-embedded M) @ P(x): the kernel accepts permuted layouts."""
        matrix = rng.integers(0, Q, size=(12, 12), dtype=np.uint64)
        x = rng.integers(0, Q, size=12, dtype=np.uint64)
        perm = rng.permutation(12)
        natural = modmatmul(matrix, x.reshape(-1, 1), Q).reshape(-1)
        # x permuted so that x_perm[i] = x[perm[i]]; embed the same indices.
        x_perm = x[perm]
        embedded = modmatmul(
            embed_permutation_into_cols(matrix, perm), x_perm.reshape(-1, 1), Q
        ).reshape(-1)
        assert np.array_equal(natural, embedded)

    def test_permutation_matrix_equivalence(self, rng):
        perm = rng.permutation(10)
        matrix = permutation_matrix(perm)
        x = rng.integers(0, 100, size=10)
        assert np.array_equal(matrix @ x, permute_vector(x, perm))

    def test_elementwise_fold(self, rng):
        values = rng.integers(0, Q, size=20, dtype=np.uint64)
        constants = rng.integers(0, Q, size=20, dtype=np.uint64)
        perm = rng.permutation(20)
        runtime = permute_vector((values * constants) % Q, perm)
        folded = (
            permute_vector(values, perm) * fold_elementwise_permutation(constants, perm)
        ) % Q
        assert np.array_equal(runtime, folded)


class TestPermutationAlgebra:
    def test_fuse(self, rng):
        first = rng.permutation(32)
        second = rng.permutation(32)
        x = rng.integers(0, 100, size=32)
        sequential = permute_vector(permute_vector(x, first), second)
        fused = permute_vector(x, fuse_permutations(first, second))
        assert np.array_equal(sequential, fused)

    def test_transpose_stride(self, rng):
        values = rng.integers(0, 100, size=24)
        perm = transpose_stride_permutation(4, 6)
        assert np.array_equal(values[perm], values.reshape(4, 6).T.reshape(-1))

    def test_bit_reverse_fusion_is_involution(self):
        br = bit_reverse_indices(64)
        assert np.array_equal(fuse_permutations(br, br), np.arange(64))
