"""Tests for the performance/energy methodology and the published-data tables."""

import pytest

from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.perf import (
    ENERGY_EFFICIENCY_HEADLINES,
    NTT_THROUGHPUT_CROSS,
    TABLE5_BAT_MATMUL,
    TABLE6_BCONV,
    TABLE8_BASELINES,
    batch_throughput_curve,
    compare_efficiency,
    cores_to_match_power,
    optimal_batch,
    power_matched_vm,
    throughput_per_watt,
)
from repro.tpu import TensorCoreDevice, tensor_core


@pytest.fixture(scope="module")
def compiler():
    return CrossCompiler(PARAMETER_SETS["D"], CompilerOptions.cross_default())


class TestPowerMatching:
    def test_core_count_rounds_to_nearest(self):
        per_core = tensor_core("TPUv6e").tdp_watts
        assert cores_to_match_power("TPUv6e", per_core * 4) == 4
        assert cores_to_match_power("TPUv6e", per_core * 0.4) == 1

    def test_power_matched_vm(self):
        vm = power_matched_vm("TPUv6e", 450)
        assert vm.total_power_watts == pytest.approx(450, rel=0.5)

    def test_throughput_per_watt_helper(self):
        assert throughput_per_watt(1e-3, 100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            throughput_per_watt(0, 100)


class TestEfficiencyComparison:
    def test_openfhe_comparison_is_huge_win(self, compiler):
        """The paper's headline: ~2 orders of magnitude over the CPU library."""
        record = TABLE8_BASELINES["OpenFHE"]
        result = compare_efficiency(
            record.name,
            record.he_mult_us,
            record.platform_power_watts,
            compiler.he_mult(),
        )
        assert result.efficiency_gain > 50

    def test_result_fields_consistent(self, compiler):
        record = TABLE8_BASELINES["WarpDrive"]
        result = compare_efficiency(
            record.name,
            record.he_mult_us,
            record.platform_power_watts,
            compiler.he_mult(),
            tensor_cores=4,
        )
        assert result.tensor_cores == 4
        assert result.latency_speedup == pytest.approx(
            record.he_mult_us / result.cross_latency_us
        )
        assert result.efficiency_gain == pytest.approx(
            result.cross_throughput_per_watt / result.baseline_throughput_per_watt
        )


class TestBatching:
    def test_curve_shape(self, compiler):
        device = TensorCoreDevice.for_generation("TPUv6e")
        small_compiler = CrossCompiler(PARAMETER_SETS["A"], CompilerOptions.cross_default())
        points = batch_throughput_curve(small_compiler, device, [1, 2, 4, 8, 16, 32])
        assert points[0].normalized == pytest.approx(1.0)
        # Batching must help for the small set (paper: 7.7x at batch 32).
        assert optimal_batch(points).batch > 1
        assert optimal_batch(points).normalized > 1.5

    def test_large_set_benefits_less(self, compiler):
        """Set D gains less from batching than Set A (paper Fig. 11b)."""
        device = TensorCoreDevice.for_generation("TPUv6e")
        set_a = CrossCompiler(PARAMETER_SETS["A"], CompilerOptions.cross_default())
        batches = [1, 2, 4, 8, 16, 32]
        gain_a = optimal_batch(batch_throughput_curve(set_a, device, batches)).normalized
        gain_d = optimal_batch(batch_throughput_curve(compiler, device, batches)).normalized
        assert gain_a > gain_d


class TestPublishedData:
    def test_table5_rows_complete(self):
        assert len(TABLE5_BAT_MATMUL) == 9
        for _, _, _, baseline_us, bat_us in TABLE5_BAT_MATMUL:
            assert baseline_us > bat_us  # BAT always wins in Table V

    def test_table6_speedups(self):
        for _, _, baseline_us, bat_us in TABLE6_BCONV:
            assert 2.0 < baseline_us / bat_us < 8.0

    def test_table8_baselines_have_power(self):
        for record in TABLE8_BASELINES.values():
            assert record.platform_power_watts > 0
            assert record.he_mult_us is not None

    def test_energy_headlines(self):
        assert ENERGY_EFFICIENCY_HEADLINES["OpenFHE"] == pytest.approx(451)
        assert ENERGY_EFFICIENCY_HEADLINES["Cheddar"] == pytest.approx(1.15)

    def test_ntt_throughput_monotonic_across_generations(self):
        for degree in (2**12, 2**13, 2**14):
            values = [NTT_THROUGHPUT_CROSS[vm][degree] for vm in ("v4-4", "v5e-4", "v5p-4", "v6e-8")]
            assert values == sorted(values)
