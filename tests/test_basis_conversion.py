"""Tests for fast RNS basis conversion (BConv)."""

import numpy as np
import pytest

from repro.numtheory.crt import RnsBasis
from repro.poly.basis_conversion import BasisConversion
from repro.poly.rns_poly import RnsPolynomial


@pytest.fixture(scope="module")
def conversion(rns_basis):
    target = RnsBasis.generate(6, 30, rns_basis.degree)
    return BasisConversion(source=rns_basis, target=target)


@pytest.fixture(scope="module")
def sample_poly(rns_basis, rng):
    coeffs = [
        int(v) % rns_basis.modulus_product
        for v in rng.integers(0, 2**62, size=rns_basis.degree)
    ]
    return RnsPolynomial.from_int_coefficients(coeffs, rns_basis)


class TestConstruction:
    def test_constant_matrix_shape(self, conversion, rns_basis):
        assert conversion.conversion_matrix.shape == (6, rns_basis.size)

    def test_degree_mismatch(self, rns_basis):
        with pytest.raises(ValueError):
            BasisConversion(
                source=rns_basis, target=RnsBasis.generate(2, 28, rns_basis.degree * 2)
            )

    def test_hat_inverse_constants(self, conversion, rns_basis):
        big_q = rns_basis.modulus_product
        for i, q in enumerate(rns_basis.moduli):
            assert (int(conversion.hat_inverses[i]) * ((big_q // q) % q)) % q == 1


class TestConversion:
    def test_fast_conversion_error_bound(self, conversion, sample_poly, rns_basis):
        """Fast BConv equals exact conversion plus e*Q with 0 <= e < L."""
        fast = conversion.convert(sample_poly)
        exact = conversion.convert_exact(sample_poly)
        big_q = rns_basis.modulus_product
        limbs = rns_basis.size
        for j, p_j in enumerate(conversion.target.moduli):
            allowed = {
                (int(x) + e * big_q) % p_j
                for e in range(limbs + 1)
                for x in [0]
            }
            for exact_val, fast_val in zip(exact.residues[j], fast.residues[j]):
                candidates = {(int(exact_val) + e * big_q) % p_j for e in range(limbs + 1)}
                assert int(fast_val) in candidates

    def test_exact_conversion_matches_crt(self, conversion, sample_poly):
        exact = conversion.convert_exact(sample_poly)
        integers = sample_poly.to_int_coefficients()
        for j, p_j in enumerate(conversion.target.moduli):
            expected = np.array([c % p_j for c in integers], dtype=np.uint64)
            assert np.array_equal(exact.residues[j], expected)

    def test_overshoot_is_multiple_of_q(self, conversion, rns_basis):
        """The fast/exact discrepancy is always e*Q for an integer 0 <= e < L."""
        coeffs = list(range(rns_basis.degree))
        poly = RnsPolynomial.from_int_coefficients(coeffs, rns_basis)
        fast = conversion.convert(poly)
        exact = conversion.convert_exact(poly)
        big_q = rns_basis.modulus_product
        for j, p_j in enumerate(conversion.target.moduli):
            q_inv = pow(big_q % p_j, -1, p_j)
            for fast_val, exact_val in zip(fast.residues[j], exact.residues[j]):
                overshoot = ((int(fast_val) - int(exact_val)) * q_inv) % p_j
                assert overshoot < rns_basis.size

    def test_zero_converts_to_zero(self, conversion, rns_basis):
        zero = RnsPolynomial.zero(rns_basis)
        assert np.all(conversion.convert(zero).residues == 0)

    def test_requires_coeff_domain(self, conversion, sample_poly):
        with pytest.raises(ValueError):
            conversion.convert(sample_poly.to_eval())

    def test_requires_matching_source(self, conversion, rns_basis):
        other_basis = RnsBasis.generate(3, 26, rns_basis.degree)
        other = RnsPolynomial.zero(other_basis)
        with pytest.raises(ValueError):
            conversion.convert(other)

    def test_step1_step2_composition(self, conversion, sample_poly):
        direct = conversion.convert_residues(sample_poly.residues)
        staged = conversion.step2(conversion.step1(sample_poly.residues))
        assert np.array_equal(direct, staged)

    def test_output_domain_and_basis(self, conversion, sample_poly):
        converted = conversion.convert(sample_poly)
        assert converted.domain == "coeff"
        assert converted.basis.moduli == conversion.target.moduli
