"""Tests for the kernel IR (device operation graphs)."""

import pytest

from repro.core.kernel_ir import (
    Category,
    KernelGraph,
    MatMulOp,
    MemoryOp,
    PermuteOp,
    TypeConvertOp,
    VectorOp,
)


class TestOps:
    def test_matmul_counts(self):
        op = MatMulOp(name="gemm", m=128, k=256, n=64, operand_bits=8, batch=2)
        assert op.mac_count == 128 * 256 * 64 * 2
        assert op.input_bytes == (128 * 256 + 256 * 64) * 1 * 2
        assert op.output_bytes == 128 * 64 * 4 * 2

    def test_matmul_32bit_bytes(self):
        op = MatMulOp(name="gemm32", m=4, k=4, n=4, operand_bits=32)
        assert op.input_bytes == (16 + 16) * 4

    def test_vector_op(self):
        op = VectorOp(name="vec", elements=1000, ops_per_element=10.0)
        assert op.op_count == 10000
        assert op.data_bytes == 1000 * 4 * 3

    def test_permute_efficiency(self):
        assert PermuteOp(name="t", elements=10, pattern="transpose").efficiency == 0.5
        assert PermuteOp(name="g", elements=10, pattern="gather").efficiency == 0.08
        assert PermuteOp(name="b", elements=10, pattern="broadcast").efficiency == 1.0
        assert PermuteOp(name="x", elements=10, pattern="unknown").efficiency == 0.25

    def test_permute_bytes(self):
        op = PermuteOp(name="p", elements=100, operand_bits=32)
        assert op.data_bytes == 800

    def test_type_convert_bytes(self):
        op = TypeConvertOp(name="c", elements=8, from_bits=32, to_bits=8)
        assert op.data_bytes == 8 * 5

    def test_memory_op(self):
        op = MemoryOp(name="load", bytes_moved=4096)
        assert op.bytes_moved == 4096
        assert op.category == Category.OTHER


class TestKernelGraph:
    def test_add_and_extend(self):
        graph = KernelGraph(name="g")
        graph.add(VectorOp(name="a", elements=1))
        graph.extend([VectorOp(name="b", elements=2), MatMulOp(name="c", m=1, k=1, n=1)])
        assert len(graph.ops) == 3
        assert graph.count(VectorOp) == 2
        assert graph.count(MatMulOp) == 1

    def test_totals(self):
        graph = KernelGraph(name="g")
        graph.add(MatMulOp(name="m1", m=2, k=3, n=4))
        graph.add(MatMulOp(name="m2", m=1, k=1, n=1))
        graph.add(VectorOp(name="v", elements=10, ops_per_element=2.0))
        graph.add(PermuteOp(name="p", elements=5))
        assert graph.total_macs == 24 + 1
        assert graph.total_vector_ops == 20
        assert graph.total_permute_bytes == 40

    def test_merge_with_prefix(self):
        inner = KernelGraph(name="inner").add(VectorOp(name="op", elements=1))
        outer = KernelGraph(name="outer").merge(inner, prefix="sub")
        assert outer.ops[0].name == "sub/op"

    def test_repeat(self):
        graph = KernelGraph(name="g").add(VectorOp(name="v", elements=1))
        repeated = graph.repeat(5)
        assert len(repeated.ops) == 5
        assert repeated.name == "gx5"

    def test_ops_are_frozen(self):
        op = VectorOp(name="v", elements=1)
        with pytest.raises(Exception):
            op.elements = 2
