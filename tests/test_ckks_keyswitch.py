"""Tests for hybrid key switching and ModDown."""

import numpy as np
import pytest

from repro.ckks.keyswitch import mod_down, switch_key
from repro.poly.rns_poly import RnsPolynomial


class TestModDown:
    def test_divides_by_special_product(self, ckks_setup, rng):
        params = ckks_setup["params"]
        level = params.limbs
        extended = params.extended_basis(level)
        p_product = params.special_product
        # A polynomial that is an exact multiple of P reduces exactly.
        small = [int(v) for v in rng.integers(0, 1000, size=params.degree)]
        coeffs = [c * p_product for c in small]
        poly = RnsPolynomial.from_int_coefficients(coeffs, extended)
        reduced = mod_down(poly, params, level)
        assert reduced.to_int_coefficients() == small

    def test_rounding_error_is_small(self, ckks_setup, rng):
        params = ckks_setup["params"]
        level = params.limbs
        extended = params.extended_basis(level)
        p_product = params.special_product
        coeffs = [
            int(high) * p_product + int(low)
            for high, low in zip(
                rng.integers(0, 1000, size=params.degree),
                rng.integers(0, 2**40, size=params.degree),
            )
        ]
        poly = RnsPolynomial.from_int_coefficients(coeffs, extended)
        reduced = mod_down(poly, params, level)
        for result, original in zip(reduced.to_int_coefficients(), coeffs):
            assert abs(result - original // p_product) <= params.limbs + 1

    def test_basis_validation(self, ckks_setup):
        params = ckks_setup["params"]
        wrong = RnsPolynomial.zero(params.modulus_basis)
        with pytest.raises(ValueError):
            mod_down(wrong, params, params.limbs)


class TestSwitchKey:
    def test_switches_to_canonical_secret(self, ckks_setup, rng):
        """ks0 + ks1*s ~= d * s^2 when using the relinearisation key."""
        params = ckks_setup["params"]
        keygen = ckks_setup["keygen"]
        relin = ckks_setup["evaluator"].relin_key
        level = params.limbs
        basis = params.basis_at_level(level)
        secret = keygen.secret_key.polynomial(basis)
        secret_squared = secret.multiply(secret).to_coeff()

        d = RnsPolynomial.from_signed_coefficients(
            rng.integers(-1000, 1000, size=params.degree, dtype=np.int64), basis
        )
        ks0, ks1 = switch_key(d, relin, params, level)
        switched = ks0.add(ks1.multiply(secret).to_coeff())
        expected = d.multiply(secret_squared).to_coeff()
        error = switched.sub(expected)
        signed_error = np.array(error.to_signed_coefficients(), dtype=np.float64)
        # The switching error must be tiny relative to the modulus (noise only).
        assert np.abs(signed_error).max() < 2**24

    def test_level_mismatch_rejected(self, ckks_setup, rng):
        params = ckks_setup["params"]
        relin = ckks_setup["evaluator"].relin_key
        basis = params.basis_at_level(params.limbs)
        d = RnsPolynomial.zero(basis)
        with pytest.raises(ValueError):
            switch_key(d, relin, params, params.limbs - 1)

    def test_lower_level_switching(self, ckks_setup, rng):
        params = ckks_setup["params"]
        keygen = ckks_setup["keygen"]
        relin = ckks_setup["evaluator"].relin_key
        level = params.limbs - 1
        basis = params.basis_at_level(level)
        secret = keygen.secret_key.polynomial(basis)
        secret_squared = secret.multiply(secret).to_coeff()
        d = RnsPolynomial.from_signed_coefficients(
            rng.integers(-100, 100, size=params.degree, dtype=np.int64), basis
        )
        ks0, ks1 = switch_key(d, relin, params, level)
        switched = ks0.add(ks1.multiply(secret).to_coeff())
        error = switched.sub(d.multiply(secret_squared).to_coeff())
        signed_error = np.array(error.to_signed_coefficients(), dtype=np.float64)
        assert np.abs(signed_error).max() < 2**24
