"""Serving-runtime tests: queue, deadlines, retry, breaker, server, chaos.

Exercises the resilience contract of :mod:`repro.serving` piece by piece
(bounded admission, cooperative cancellation, taxonomy-driven retry
classification, circuit-breaker recovery) and then end to end: a live
server under concurrent load with every fault drill replayed by the
:mod:`repro.testing.chaos` harness, gated on zero silent corruption and
zero hangs.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

from repro import diagnostics
from repro.errors import (
    BackendExactnessError,
    DeadlineExceeded,
    NoiseBudgetExhausted,
    ParameterError,
    ReproError,
    RequestCancelled,
    ServiceOverloaded,
    ServiceUnavailable,
    PoisonRequest,
    ServingError,
    TenantNotFound,
    WorkerCrashed,
    WorkerUnresponsive,
)
from repro.poly import ntt_engine
from repro.serving import (
    BoundedRequestQueue,
    CancelScope,
    CircuitBreaker,
    InferenceRequest,
    InferenceServer,
    RetryPolicy,
    TenantRegistry,
    backend_attributable,
    cancel_scope,
    checkpoint,
    current_scope,
    is_retryable,
)
from repro.testing.chaos import build_tenants, prepare_work, run_chaos


@pytest.fixture
def registry_and_clients():
    registry = TenantRegistry()
    clients = build_tenants(registry, ("alice", "bob"))
    return registry, clients


@pytest.fixture(autouse=True)
def _clean_dispatch():
    yield
    ntt_engine.clear_quarantine()
    ntt_engine.reset_sentinels()


# ---------------------------------------------------------------------------
# Error taxonomy additions
# ---------------------------------------------------------------------------


class TestServingErrors:
    def test_hierarchy(self):
        for exc in (
            ServiceOverloaded,
            ServiceUnavailable,
            DeadlineExceeded,
            RequestCancelled,
            TenantNotFound,
            WorkerCrashed,
            WorkerUnresponsive,
            PoisonRequest,
        ):
            assert issubclass(exc, ServingError)
            assert issubclass(exc, ReproError)

    def test_compat_ancestry(self):
        # catchable by callers written against stdlib types
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(TenantNotFound, KeyError)
        with pytest.raises(TimeoutError):
            raise DeadlineExceeded("late")

    def test_tenant_not_found_message_is_flat(self):
        # KeyError would repr() the message; ours must stay readable
        assert "register" in str(TenantNotFound("no tenant; register it"))


# ---------------------------------------------------------------------------
# Bounded queue
# ---------------------------------------------------------------------------


class TestBoundedQueue:
    def test_sheds_instead_of_blocking(self):
        queue = BoundedRequestQueue(2)
        queue.put("a")
        queue.put("b")
        started = time.monotonic()
        with pytest.raises(ServiceOverloaded) as info:
            queue.put("c")
        assert time.monotonic() - started < 0.5  # rejected, not blocked
        assert "queue_capacity" in str(info.value) or "retry" in str(info.value)
        assert queue.stats()["shed"] == 1

    def test_fifo_and_counters(self):
        queue = BoundedRequestQueue(4)
        for item in ("a", "b", "c"):
            queue.put(item)
        assert [queue.get(0.01) for _ in range(3)] == ["a", "b", "c"]
        stats = queue.stats()
        assert stats["accepted"] == 3
        assert stats["high_water"] == 3
        assert stats["depth"] == 0

    def test_get_timeout_returns_none(self):
        assert BoundedRequestQueue(1).get(timeout=0.01) is None

    def test_drain_matching_takes_matches_keeps_order(self):
        queue = BoundedRequestQueue(8)
        for item in ("a1", "b1", "a2", "b2", "a3"):
            queue.put(item)
        taken = queue.drain_matching(lambda item: item.startswith("a"), 2)
        assert taken == ["a1", "a2"]
        # non-matches and the over-limit match keep their FIFO order
        assert [queue.get(0.01) for _ in range(3)] == ["b1", "b2", "a3"]
        assert queue.drain_matching(lambda item: True, 0) == []

    def test_drain_matching_concurrent_producers(self):
        # Dynamic-batching hot path under contention: producers racing the
        # draining worker must never lose a ticket, double-serve one, or
        # reorder a batch_key's FIFO.
        producers, per_producer = 4, 48
        queue = BoundedRequestQueue(producers * per_producer)
        barrier = threading.Barrier(producers + 1)

        def produce(pid: int) -> None:
            barrier.wait()
            for seq in range(per_producer):
                queue.put((pid, seq, "even" if seq % 2 == 0 else "odd"))

        threads = [
            threading.Thread(target=produce, args=(pid,))
            for pid in range(producers)
        ]
        for thread in threads:
            thread.start()
        served: list = []
        barrier.wait()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            served.extend(
                queue.drain_matching(lambda item: item[2] == "even", 8)
            )
            leader = queue.get(0.001)
            if leader is not None:
                served.append(leader)
            if not any(t.is_alive() for t in threads) and queue.depth() == 0:
                break
        for thread in threads:
            thread.join(timeout=2.0)
        # no ticket lost, none double-served...
        assert len(served) == producers * per_producer
        assert len(set(served)) == len(served)
        # ...and within each (producer, batch_key) stream the serve order
        # is the submission order.
        last_seq: dict = {}
        for pid, seq, key in served:
            assert last_seq.get((pid, key), -1) < seq
            last_seq[(pid, key)] = seq

    def test_drain_shutdown_race_loses_nothing(self):
        # close() racing producers and the drainer: every put either lands
        # (and is served exactly once) or fails typed -- never vanishes.
        queue = BoundedRequestQueue(1024)
        barrier = threading.Barrier(3)
        admitted: list = []
        rejected: list = []

        def produce() -> None:
            barrier.wait()
            for seq in range(256):
                try:
                    queue.put(seq)
                    admitted.append(seq)
                except ServiceUnavailable:
                    rejected.append(seq)

        def close_midstream() -> None:
            barrier.wait()
            time.sleep(0.002)
            queue.close()

        producer = threading.Thread(target=produce)
        closer = threading.Thread(target=close_midstream)
        producer.start()
        closer.start()
        served: list = []
        barrier.wait()
        while producer.is_alive() or queue.depth():
            served.extend(queue.drain_matching(lambda item: True, 16))
            item = queue.get(0.001)
            if item is not None:
                served.append(item)
        producer.join(timeout=2.0)
        closer.join(timeout=2.0)
        served.extend(queue.drain_matching(lambda item: True, 10**6))
        assert sorted(served) == sorted(admitted)
        assert len(served) + len(rejected) == 256

    def test_close_rejects_and_wakes(self):
        queue = BoundedRequestQueue(1)
        got = []
        consumer = threading.Thread(target=lambda: got.append(queue.get(5.0)))
        consumer.start()
        queue.close()
        consumer.join(timeout=2.0)
        assert not consumer.is_alive()
        assert got == [None]
        with pytest.raises(ServiceUnavailable):
            queue.put("x")


# ---------------------------------------------------------------------------
# Cooperative cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_checkpoint_without_scope_is_noop(self):
        assert current_scope() is None
        checkpoint()  # must not raise

    def test_deadline_raises_at_checkpoint(self):
        clock = iter([0.0, 0.0, 10.0]).__next__
        with cancel_scope(timeout=1.0, clock=clock, label="t"):
            checkpoint()  # clock=0.0 < deadline=1.0
            with pytest.raises(DeadlineExceeded):
                checkpoint()  # clock=10.0

    def test_cancel_from_other_thread(self):
        scope = cancel_scope(label="victim")
        with scope:
            threading.Thread(target=lambda: scope.cancel("drain")).start()
            deadline = time.monotonic() + 2.0
            with pytest.raises(RequestCancelled, match="drain"):
                while time.monotonic() < deadline:
                    checkpoint()
                    time.sleep(0.001)

    def test_nested_scope_honours_parent(self):
        outer = cancel_scope(label="outer")
        with outer, cancel_scope(label="inner"):
            outer.cancel("parent gone")
            with pytest.raises(RequestCancelled, match="parent gone"):
                checkpoint()

    def test_scope_uninstalls_on_exit(self):
        with cancel_scope():
            assert current_scope() is not None
        assert current_scope() is None

    def test_evaluator_polls_checkpoints(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        session = registry.session(client.tenant_id)
        ciphertext = client.encrypt_features(np.ones(client.params.slot_count))
        scope = CancelScope(label="req")
        scope.cancel("gone")
        with scope, pytest.raises(RequestCancelled):
            session.evaluator.square(ciphertext)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_classification(self):
        assert is_retryable(BackendExactnessError("backend lied"))
        # Worker deaths are infrastructure faults: re-dispatch the request.
        assert is_retryable(WorkerCrashed("shard SIGKILLed"))
        assert is_retryable(WorkerUnresponsive("heartbeats stopped"))
        for terminal in (
            ParameterError("bad"),
            NoiseBudgetExhausted("empty"),
            DeadlineExceeded("late"),
            ServiceOverloaded("full"),
            PoisonRequest("killed two workers"),
            RuntimeError("unknown"),
        ):
            assert not is_retryable(terminal)

    def test_backend_attribution_excludes_worker_faults(self):
        # Only exactness faults feed the circuit breaker: a worker crash is
        # retryable but must not quarantine an innocent NTT backend.
        assert backend_attributable(BackendExactnessError("backend lied"))
        for error in (
            WorkerCrashed("x"),
            WorkerUnresponsive("x"),
            PoisonRequest("x"),
            DeadlineExceeded("x"),
        ):
            assert not backend_attributable(error)

    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, max_delay_s=0.05, jitter=0.5
        )
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in range(1, 6)]
        assert all(0 < d <= 0.05 for d in delays)
        # jitter must actually vary the delay
        assert len({policy.delay(3, rng) for _ in range(8)}) > 1

    def test_should_retry_respects_budget(self):
        policy = RetryPolicy(max_attempts=2)
        err = BackendExactnessError("x")
        assert policy.should_retry(err, 1)
        assert not policy.should_retry(err, 2)
        assert not policy.should_retry(ParameterError("x"), 1)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trip_quarantines_backend(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=99.0)
        assert not breaker.record_failure(ntt_engine.BACKEND_FOUR_STEP)
        assert breaker.record_failure(ntt_engine.BACKEND_FOUR_STEP)
        assert ntt_engine.BACKEND_FOUR_STEP in ntt_engine.quarantined_backends()
        assert breaker.state(ntt_engine.BACKEND_FOUR_STEP) == "open"

    def test_success_decays_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(ntt_engine.BACKEND_FOUR_STEP)
        breaker.record_success(ntt_engine.BACKEND_FOUR_STEP)
        snap = breaker.snapshot()[ntt_engine.BACKEND_FOUR_STEP]
        assert snap.failures == 0 and snap.state == "closed"

    def test_probe_recovers_healthy_backend(self, registry_and_clients):
        registry, clients = registry_and_clients
        clock = {"now": 0.0}
        breaker = CircuitBreaker(cooldown_s=1.0, clock=lambda: clock["now"])
        backend = ntt_engine.BACKEND_FOUR_STEP
        breaker.record_failure(backend)
        assert backend in ntt_engine.quarantined_backends()
        params = clients[0].params
        plans = [
            ntt_engine.plan_stack_for(
                tuple(params.modulus_basis.moduli), params.degree
            )
        ]
        assert breaker.maybe_probe(plans) == {}  # still cooling down
        clock["now"] = 2.0
        outcomes = breaker.maybe_probe(plans)
        assert outcomes == {backend: True}
        assert backend not in ntt_engine.quarantined_backends()
        assert breaker.state(backend) == "closed"

    def test_failed_probe_reopens_with_doubled_cooldown(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(cooldown_s=1.0, clock=lambda: clock["now"])
        backend = ntt_engine.BACKEND_FOUR_STEP
        breaker.record_failure(backend)

        class AlwaysBadPlan:
            pass

        real_verify = ntt_engine.verify_plan
        ntt_engine.verify_plan = lambda plan: False
        try:
            clock["now"] = 2.0
            outcomes = breaker.maybe_probe([AlwaysBadPlan()])
        finally:
            ntt_engine.verify_plan = real_verify
        assert outcomes == {backend: False}
        assert breaker.state(backend) == "open"
        assert breaker.snapshot()[backend].cooldown_s == pytest.approx(2.0)
        # the re-opened circuit must have restored the quarantine
        assert backend in ntt_engine.quarantined_backends()

    def test_adopts_external_quarantine(self):
        ntt_engine.quarantine_backend(
            ntt_engine.BACKEND_BUTTERFLY, reason="sentinel"
        )
        breaker = CircuitBreaker(cooldown_s=99.0)
        breaker.observe_quarantine()
        assert breaker.state(ntt_engine.BACKEND_BUTTERFLY) == "open"


# ---------------------------------------------------------------------------
# Sessions and registry
# ---------------------------------------------------------------------------


class TestTenantRegistry:
    def test_unknown_tenant_names_remedy(self, registry_and_clients):
        registry, _ = registry_and_clients
        with pytest.raises(TenantNotFound) as info:
            registry.session("mallory")
        message = str(info.value)
        assert "mallory" in message
        assert "register" in message

    def test_sessions_are_shared_and_warm(self, registry_and_clients):
        registry, clients = registry_and_clients
        session = registry.session(clients[0].tenant_id)
        assert session is registry.session(clients[0].tenant_id)
        assert session.warmed

    def test_empty_tenant_id_rejected(self, registry_and_clients):
        registry, clients = registry_and_clients
        with pytest.raises(ParameterError):
            registry.register("", clients[0].params)


# ---------------------------------------------------------------------------
# End-to-end server behaviour
# ---------------------------------------------------------------------------


class TestInferenceServer:
    def test_roundtrip_correct_and_diagnosed(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(5)
        features = rng.uniform(-1, 1, client.params.slot_count)
        diagnostics.clear_events()
        with InferenceServer(registry, workers=2) as server:
            ticket = server.submit(
                InferenceRequest(
                    client.tenant_id,
                    client.circuit,
                    payload=client.encrypt_features(features),
                )
            )
            result = ticket.result(timeout=30.0)
        decoded = client.decode(result)
        assert np.abs(decoded - client.expected(features)).max() < 1e-3
        diag = ticket.diagnostics
        assert diag["attempts"] == 1
        assert diag["backend"] in ntt_engine.BACKENDS
        assert diag["queue_wait_s"] >= 0.0
        assert diag["service_s"] > 0.0
        assert diag["noise_headroom_bits"] is None or diag["noise_headroom_bits"] > 0
        kinds = [e["kind"] for e in diagnostics.events()]
        assert "request_served" in kinds

    def test_unknown_tenant_rejected_at_admission(self, registry_and_clients):
        registry, _ = registry_and_clients
        with InferenceServer(registry, workers=1) as server:
            with pytest.raises(TenantNotFound):
                server.submit(InferenceRequest("mallory", lambda s, p: p))

    def test_overload_sheds_typed(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        release = threading.Event()

        def slow_circuit(session, payload):
            release.wait(10.0)
            return payload

        server = InferenceServer(registry, workers=1, queue_capacity=1)
        with server:
            tickets = []
            shed = 0
            # 1 running + 1 queued fit; the rest must shed as typed errors
            for _ in range(6):
                try:
                    tickets.append(
                        server.submit(
                            InferenceRequest(client.tenant_id, slow_circuit)
                        )
                    )
                except ServiceOverloaded:
                    shed += 1
                time.sleep(0.02)
            assert shed >= 1
            assert not server.ready()  # queue saturated
            release.set()
            for ticket in tickets:
                ticket.result(timeout=10.0)

    def test_deadline_exceeded_is_typed(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]

        def endless(session, payload):
            while True:
                checkpoint()
                time.sleep(0.005)

        with InferenceServer(registry, workers=1) as server:
            ticket = server.submit(
                InferenceRequest(client.tenant_id, endless, timeout_s=0.1)
            )
            with pytest.raises(DeadlineExceeded):
                ticket.result(timeout=10.0)
            assert ticket.status == "failed"

    def test_client_cancel_is_typed(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        entered = threading.Event()

        def endless(session, payload):
            entered.set()
            while True:
                checkpoint()
                time.sleep(0.005)

        with InferenceServer(registry, workers=1) as server:
            ticket = server.submit(InferenceRequest(client.tenant_id, endless))
            assert entered.wait(5.0)
            ticket.cancel("client gave up")
            with pytest.raises(RequestCancelled):
                ticket.result(timeout=10.0)

    def test_drain_refuses_new_work_and_finishes_old(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        server = InferenceServer(registry, workers=2)
        server.start()
        rng = np.random.default_rng(6)
        features = rng.uniform(-1, 1, client.params.slot_count)
        tickets = [
            server.submit(
                InferenceRequest(
                    client.tenant_id,
                    client.circuit,
                    payload=client.encrypt_features(features),
                )
            )
            for _ in range(4)
        ]
        assert server.drain(timeout=30.0)
        with pytest.raises(ServiceUnavailable):
            server.submit(InferenceRequest(client.tenant_id, client.circuit))
        assert all(t.done() for t in tickets)
        assert server.health()["status"] == "draining"
        server.shutdown()
        assert server.health()["status"] == "stopped"

    def test_health_reports_degraded_under_quarantine(self, registry_and_clients):
        registry, _ = registry_and_clients
        with InferenceServer(registry, workers=1) as server:
            assert server.health()["status"] == "ok"
            ntt_engine.quarantine_backend(
                ntt_engine.BACKEND_FOUR_STEP, reason="test"
            )
            health = server.health()
            assert health["status"] == "degraded"
            assert health["quarantined_backends"] == [ntt_engine.BACKEND_FOUR_STEP]

    def test_retry_reroutes_after_backend_fault(self, registry_and_clients):
        """A circuit that fails retryably once must heal via quarantine+retry."""
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(8)
        features = rng.uniform(-1, 1, client.params.slot_count)
        calls = {"n": 0}

        def flaky_circuit(session, payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BackendExactnessError("injected transient fault")
            return client.circuit(session, payload)

        with InferenceServer(registry, workers=1) as server:
            ticket = server.submit(
                InferenceRequest(
                    client.tenant_id,
                    flaky_circuit,
                    payload=client.encrypt_features(features),
                )
            )
            result = ticket.result(timeout=30.0)
        assert ticket.diagnostics["attempts"] == 2
        decoded = client.decode(result)
        assert np.abs(decoded - client.expected(features)).max() < 1e-3

    def test_terminal_error_not_retried(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        calls = {"n": 0}

        def broken_circuit(session, payload):
            calls["n"] += 1
            raise ParameterError("malformed request")

        with InferenceServer(registry, workers=1) as server:
            ticket = server.submit(
                InferenceRequest(client.tenant_id, broken_circuit)
            )
            with pytest.raises(ParameterError):
                ticket.result(timeout=10.0)
        assert calls["n"] == 1


# ---------------------------------------------------------------------------
# Dynamic batching
# ---------------------------------------------------------------------------


class TestDynamicBatching:
    """Coalescing queued requests must change throughput, never semantics."""

    def _blocked_server(self, registry, **knobs):
        """One-worker server whose first request parks until released."""
        server = InferenceServer(registry, workers=1, **knobs)
        server.start()
        entered, release = threading.Event(), threading.Event()

        def barrier_circuit(session, payload):
            entered.set()
            release.wait(10.0)
            return payload

        return server, barrier_circuit, entered, release

    def test_knob_validation(self, registry_and_clients):
        registry, _ = registry_and_clients
        with pytest.raises(ValueError):
            InferenceServer(registry, max_batch_size=0)
        with pytest.raises(ValueError):
            InferenceServer(registry, max_batch_wait_s=-1.0)

    def test_health_reports_batching(self, registry_and_clients):
        registry, _ = registry_and_clients
        with InferenceServer(
            registry, workers=1, max_batch_size=4, max_batch_wait_s=0.01
        ) as server:
            batching = server.health()["batching"]
        assert batching["max_batch_size"] == 4
        assert batching["max_batch_wait_s"] == pytest.approx(0.01)
        assert batching["batches_served"] == 0
        assert batching["batched_requests"] == 0

    def test_coalesced_results_bit_exact(self, registry_and_clients):
        """A coalesced batch must return exactly the solo-serving results."""
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(21)
        feature_sets = [
            rng.uniform(-1, 1, client.params.slot_count) for _ in range(4)
        ]
        payloads = [client.encrypt_features(f) for f in feature_sets]
        session = registry.session(client.tenant_id)
        oracles = [client.circuit(session, ct) for ct in payloads]

        server, barrier, entered, release = self._blocked_server(
            registry, max_batch_size=4, max_batch_wait_s=0.05
        )
        try:
            server.submit(InferenceRequest(client.tenant_id, barrier))
            assert entered.wait(5.0)
            tickets = [
                server.submit(
                    InferenceRequest(
                        client.tenant_id,
                        client.circuit,
                        payload=ct,
                        batch_key="stream",
                    )
                )
                for ct in payloads
            ]
            release.set()
            results = [t.result(timeout=30.0) for t in tickets]
        finally:
            release.set()
            server.shutdown()
        for ticket, result, oracle, features in zip(
            tickets, results, oracles, feature_sets
        ):
            assert ticket.diagnostics["batched"] is True
            assert ticket.diagnostics["batch_size"] == 4
            assert np.array_equal(
                result.c0.to_coeff().residues, oracle.c0.to_coeff().residues
            )
            assert np.array_equal(
                result.c1.to_coeff().residues, oracle.c1.to_coeff().residues
            )
            decoded = client.decode(result)
            assert np.abs(decoded - client.expected(features)).max() < 1e-3
        assert server.batches_served == 1
        assert server.batched_requests == 4

    def test_requests_without_key_never_coalesce(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(22)
        features = rng.uniform(-1, 1, client.params.slot_count)
        server, barrier, entered, release = self._blocked_server(
            registry, max_batch_size=4, max_batch_wait_s=0.05
        )
        try:
            server.submit(InferenceRequest(client.tenant_id, barrier))
            assert entered.wait(5.0)
            tickets = [
                server.submit(
                    InferenceRequest(
                        client.tenant_id,
                        client.circuit,
                        payload=client.encrypt_features(features),
                    )
                )
                for _ in range(3)
            ]
            release.set()
            for ticket in tickets:
                ticket.result(timeout=30.0)
        finally:
            release.set()
            server.shutdown()
        assert server.batches_served == 0
        assert all("batched" not in t.diagnostics for t in tickets)

    def test_deadline_preserved_mid_batch(self, registry_and_clients):
        """A member whose deadline lapses in the queue fails typed; its
        batch-mates still coalesce and complete."""
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(23)
        features = rng.uniform(-1, 1, client.params.slot_count)
        server, barrier, entered, release = self._blocked_server(
            registry, max_batch_size=4, max_batch_wait_s=0.05
        )
        try:
            server.submit(InferenceRequest(client.tenant_id, barrier))
            assert entered.wait(5.0)
            healthy = [
                server.submit(
                    InferenceRequest(
                        client.tenant_id,
                        client.circuit,
                        payload=client.encrypt_features(features),
                        batch_key="stream",
                    )
                )
                for _ in range(2)
            ]
            doomed = server.submit(
                InferenceRequest(
                    client.tenant_id,
                    client.circuit,
                    payload=client.encrypt_features(features),
                    batch_key="stream",
                    timeout_s=0.05,
                )
            )
            time.sleep(0.2)  # let the doomed member's deadline lapse queued
            release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30.0)
            for ticket in healthy:
                result = ticket.result(timeout=30.0)
                decoded = client.decode(result)
                assert np.abs(decoded - client.expected(features)).max() < 1e-3
                assert ticket.diagnostics["batched"] is True
                assert ticket.diagnostics["batch_size"] == 2
        finally:
            release.set()
            server.shutdown()

    def test_cancellation_preserved_mid_batch(self, registry_and_clients):
        registry, clients = registry_and_clients
        client = clients[0]
        rng = np.random.default_rng(24)
        features = rng.uniform(-1, 1, client.params.slot_count)
        server, barrier, entered, release = self._blocked_server(
            registry, max_batch_size=4, max_batch_wait_s=0.05
        )
        try:
            server.submit(InferenceRequest(client.tenant_id, barrier))
            assert entered.wait(5.0)
            tickets = [
                server.submit(
                    InferenceRequest(
                        client.tenant_id,
                        client.circuit,
                        payload=client.encrypt_features(features),
                        batch_key="stream",
                    )
                )
                for _ in range(3)
            ]
            tickets[1].cancel("client gave up while queued")
            release.set()
            with pytest.raises(RequestCancelled):
                tickets[1].result(timeout=30.0)
            for ticket in (tickets[0], tickets[2]):
                result = ticket.result(timeout=30.0)
                decoded = client.decode(result)
                assert np.abs(decoded - client.expected(features)).max() < 1e-3
        finally:
            release.set()
            server.shutdown()

    def test_incompatible_payloads_fall_back_to_solo(self, registry_and_clients):
        """Stacking failures degrade to sequential serving, never to errors."""
        registry, clients = registry_and_clients
        client = clients[0]

        def echo(session, payload):
            return payload

        diagnostics.clear_events()
        server, barrier, entered, release = self._blocked_server(
            registry, max_batch_size=4, max_batch_wait_s=0.05
        )
        try:
            server.submit(InferenceRequest(client.tenant_id, barrier))
            assert entered.wait(5.0)
            tickets = [
                server.submit(
                    InferenceRequest(
                        client.tenant_id,
                        echo,
                        payload=payload,
                        batch_key="stream",
                    )
                )
                for payload in ("not-a-ciphertext", "also-not")
            ]
            release.set()
            results = [t.result(timeout=30.0) for t in tickets]
        finally:
            release.set()
            server.shutdown()
        assert results == ["not-a-ciphertext", "also-not"]
        assert server.batches_served == 0
        assert all("batched" not in t.diagnostics for t in tickets)
        events = [
            e for e in diagnostics.events() if e["kind"] == "batch_fallback"
        ]
        assert events and events[-1]["reason"] == "ParameterError"

    def test_chaos_with_dynamic_batching(self):
        """Every fault drill with coalescing on: quarantine reroute must
        still heal mid-batch, with zero silent corruption and zero hangs."""
        report = run_chaos(
            requests_per_drill=8,
            workers=4,
            max_batch_size=4,
            max_batch_wait_s=0.01,
        )
        assert report.silent == 0, report.summary()
        assert report.hung == 0, report.summary()
        assert report.ok
        by_drill = {o.drill: o for o in report.outcomes}
        flip = by_drill["ciphertext_bit_flip"]
        assert flip.typed_failures == 1
        assert flip.correct == flip.requests - 1
        for drill in (
            "four_step_table_corruption",
            "butterfly_table_corruption",
            "gemm_output_perturbation",
        ):
            outcome = by_drill[drill]
            assert outcome.correct == outcome.requests, outcome.errors


# ---------------------------------------------------------------------------
# Chaos: every fault drill under concurrent load
# ---------------------------------------------------------------------------


class TestChaos:
    def test_all_drills_under_concurrent_load(self):
        report = run_chaos(requests_per_drill=8, workers=8)
        assert report.silent == 0, report.summary()
        assert report.hung == 0, report.summary()
        assert report.ok
        by_drill = {o.drill: o for o in report.outcomes}
        # every admitted well-formed request completed correctly...
        baseline = by_drill["baseline_no_fault"]
        assert baseline.correct == baseline.requests
        # ...the corrupted-payload victim failed typed, its peers completed
        flip = by_drill["ciphertext_bit_flip"]
        assert flip.typed_failures == 1
        assert flip.correct == flip.requests - 1
        # ...and table corruption healed by reroute, not by luck
        for drill in (
            "four_step_table_corruption",
            "butterfly_table_corruption",
            "gemm_output_perturbation",
        ):
            outcome = by_drill[drill]
            assert outcome.correct == outcome.requests, outcome.errors

    def test_prepare_work_flips_victim_payload(self):
        registry = TenantRegistry()
        clients = build_tenants(registry, ("solo",))
        work = prepare_work(
            clients,
            requests=2,
            rng=np.random.default_rng(1),
            corrupt_payload_index=1,
        )
        healthy, corrupted = work[0][3], work[1][3]
        modulus = corrupted.c0.basis.moduli[0]
        assert int(corrupted.c0.residues[0, 0]) >= modulus
        assert int(healthy.c0.residues[0, 0]) < modulus
