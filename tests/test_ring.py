"""Tests for the PolyRing wrapper."""

import numpy as np
import pytest

from repro.poly.negacyclic import negacyclic_convolve
from repro.poly.ring import PolyRing


class TestConstruction:
    def test_rejects_non_power_of_two(self, prime):
        with pytest.raises(ValueError):
            PolyRing(degree=48, modulus=prime)

    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            PolyRing(degree=64, modulus=2**20)

    def test_rejects_incongruent_prime(self):
        with pytest.raises(ValueError):
            PolyRing(degree=64, modulus=97)  # 97 != 1 mod 128

    def test_root_properties(self, ring):
        assert pow(ring.psi, ring.degree, ring.modulus) == ring.modulus - 1
        assert pow(ring.omega, ring.degree, ring.modulus) == 1


class TestSamplingAndConversion:
    def test_uniform_range(self, ring, rng):
        sample = ring.random_uniform(rng)
        assert sample.shape == (ring.degree,)
        assert int(sample.max()) < ring.modulus

    def test_ternary_values(self, ring, rng):
        sample = ring.random_ternary(rng)
        signed = ring.to_signed(sample)
        assert set(np.unique(signed)).issubset({-1, 0, 1})

    def test_gaussian_small(self, ring, rng):
        sample = ring.random_gaussian(rng)
        signed = ring.to_signed(sample)
        assert np.abs(signed).max() < 30

    def test_signed_roundtrip(self, ring):
        signed = np.array([-5, 0, 5, -1] * (ring.degree // 4), dtype=np.int64)
        assert np.array_equal(ring.to_signed(ring.from_signed(signed)), signed)


class TestArithmetic:
    def test_multiply_matches_schoolbook(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert np.array_equal(
            ring.multiply(a, b), negacyclic_convolve(a, b, ring.modulus)
        )

    def test_add_sub_negate(self, ring, rng):
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert np.array_equal(ring.sub(ring.add(a, b), b), a)
        assert np.all(ring.add(a, ring.negate(a)) == 0)

    def test_scalar_mul(self, ring, rng):
        a = ring.random_uniform(rng)
        assert np.array_equal(ring.scalar_mul(a, 3), ring.add(ring.add(a, a), a))

    def test_ntt_intt_roundtrip(self, ring, rng):
        a = ring.random_uniform(rng)
        assert np.array_equal(ring.intt(ring.ntt(a)), a)

    def test_inverse_of(self, ring):
        assert (ring.inverse_of(7) * 7) % ring.modulus == 1


class TestAutomorphism:
    def test_identity_exponent(self, ring, rng):
        a = ring.random_uniform(rng)
        assert np.array_equal(ring.automorphism(a, 1), a)

    def test_rejects_even_exponent(self, ring, rng):
        with pytest.raises(ValueError):
            ring.automorphism(ring.random_uniform(rng), 2)

    def test_composition(self, ring, rng):
        a = ring.random_uniform(rng)
        two_n = 2 * ring.degree
        e1, e2 = 5, 7
        composed = ring.automorphism(ring.automorphism(a, e1), e2)
        direct = ring.automorphism(a, (e1 * e2) % two_n)
        assert np.array_equal(composed, direct)

    def test_is_ring_homomorphism(self, ring, rng):
        """automorphism(a*b) == automorphism(a) * automorphism(b)."""
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        exponent = 5
        lhs = ring.automorphism(ring.multiply(a, b), exponent)
        rhs = ring.multiply(
            ring.automorphism(a, exponent), ring.automorphism(b, exponent)
        )
        assert np.array_equal(lhs, rhs)

    def test_inverse_exponent_undoes(self, ring, rng):
        a = ring.random_uniform(rng)
        two_n = 2 * ring.degree
        exponent = 5
        inverse_exponent = pow(exponent, -1, two_n)
        assert np.array_equal(
            ring.automorphism(ring.automorphism(a, exponent), inverse_exponent), a
        )
