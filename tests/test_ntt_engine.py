"""Property tests for the cached-plan NTT engine against the reference oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PARAMETER_SETS
from repro.numtheory.bitrev import bit_reverse_indices
from repro.numtheory.crt import RnsBasis, crt_compose
from repro.poly.basis_conversion import conversion_for
from repro.poly.ntt_engine import (
    MAX_PLAN_MODULUS,
    NttPlan,
    plan_for,
    plan_stack_for,
    supports,
)
from repro.poly.ntt_reference import (
    ntt_forward_negacyclic,
    ntt_inverse_negacyclic,
)
from repro.poly.rns_poly import EVAL_DOMAIN, RnsPolynomial
from repro.poly.ring import PolyRing

DEGREES = [2**4, 2**5, 2**6, 2**8, 2**10, 2**12]


def _random_matrix(rng, moduli, degree):
    return np.stack(
        [rng.integers(0, q, degree, dtype=np.uint64) for q in moduli], axis=0
    )


class TestPlanBitExactness:
    @pytest.mark.parametrize("degree", DEGREES)
    def test_forward_matches_reference(self, degree, rng):
        basis = RnsBasis.generate(1, 24, degree)
        q = basis.moduli[0]
        plan = plan_for(degree, q)
        x = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(plan.forward(x), ntt_forward_negacyclic(x, q, plan.psi))

    @pytest.mark.parametrize("degree", DEGREES)
    def test_inverse_matches_reference(self, degree, rng):
        basis = RnsBasis.generate(1, 24, degree)
        q = basis.moduli[0]
        plan = plan_for(degree, q)
        x = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(plan.inverse(x), ntt_inverse_negacyclic(x, q, plan.psi))

    @pytest.mark.parametrize("degree", DEGREES)
    def test_roundtrip(self, degree, rng):
        basis = RnsBasis.generate(1, 24, degree)
        q = basis.moduli[0]
        plan = plan_for(degree, q)
        x = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(plan.inverse(plan.forward(x)), x)

    def test_matches_polyring_psi(self, ring, rng):
        """The plan's default psi is the same deterministic root PolyRing finds."""
        assert plan_for(ring.degree, ring.modulus).psi == ring.psi

    def test_batched_leading_dims(self, ring, rng):
        plan = plan_for(ring.degree, ring.modulus)
        batch = rng.integers(0, ring.modulus, (3, 2, ring.degree), dtype=np.uint64)
        fwd = plan.forward(batch)
        for i in range(3):
            for j in range(2):
                assert np.array_equal(
                    fwd[i, j],
                    ntt_forward_negacyclic(batch[i, j], ring.modulus, plan.psi),
                )
        assert np.array_equal(plan.inverse(fwd), batch)

    def test_multiply_matches_reference_path(self, ring, rng):
        plan = plan_for(ring.degree, ring.modulus)
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        expected = ntt_inverse_negacyclic(
            (ntt_forward_negacyclic(a, ring.modulus, plan.psi).astype(np.uint64)
             * ntt_forward_negacyclic(b, ring.modulus, plan.psi)) % np.uint64(ring.modulus),
            ring.modulus,
            plan.psi,
        )
        assert np.array_equal(plan.multiply(a, b), expected)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_degree_64(self, seed):
        basis = RnsBasis.generate(1, 24, 64)
        q = basis.moduli[0]
        plan = plan_for(64, q)
        x = np.random.default_rng(seed).integers(0, q, 64, dtype=np.uint64)
        assert np.array_equal(plan.inverse(plan.forward(x)), x)


class TestParameterSetModuli:
    @pytest.mark.parametrize("name", sorted(PARAMETER_SETS))
    def test_stacked_forward_bit_exact(self, name, rng):
        """Engine output is bit-exact for every paper parameter set's moduli."""
        params = PARAMETER_SETS[name]
        limbs = min(params.limbs, 2)  # reference path is slow; 2 limbs suffice
        basis = RnsBasis.generate(limbs, params.log_q, params.degree)
        stack = plan_stack_for(basis.moduli, params.degree)
        matrix = _random_matrix(rng, basis.moduli, params.degree)
        fwd = stack.forward(matrix)
        for i, q in enumerate(basis.moduli):
            psi = plan_for(params.degree, q).psi
            assert np.array_equal(fwd[i], ntt_forward_negacyclic(matrix[i], q, psi))
        assert np.array_equal(stack.inverse(fwd), matrix)


class TestPlanStack:
    def test_batched_matches_per_limb(self, rns_basis, rng):
        stack = plan_stack_for(rns_basis.moduli, rns_basis.degree)
        matrix = _random_matrix(rng, rns_basis.moduli, rns_basis.degree)
        fwd = stack.forward(matrix)
        for i, q in enumerate(rns_basis.moduli):
            plan = plan_for(rns_basis.degree, q)
            assert np.array_equal(fwd[i], plan.forward(matrix[i]))
            assert np.array_equal(stack.inverse(fwd)[i], plan.inverse(fwd[i]))

    def test_shape_validation(self, rns_basis):
        stack = plan_stack_for(rns_basis.moduli, rns_basis.degree)
        with pytest.raises(ValueError):
            stack.forward(np.zeros((1, rns_basis.degree), dtype=np.uint64))

    def test_rns_polynomial_uses_stack(self, rns_basis, rng):
        matrix = _random_matrix(rng, rns_basis.moduli, rns_basis.degree)
        poly = RnsPolynomial(rns_basis, matrix)
        stack = plan_stack_for(rns_basis.moduli, rns_basis.degree)
        assert np.array_equal(poly.to_eval().residues, stack.forward(matrix))


class TestCaching:
    def test_plan_cache_returns_same_object(self):
        basis = RnsBasis.generate(1, 24, 128)
        assert plan_for(128, basis.moduli[0]) is plan_for(128, basis.moduli[0])

    def test_stack_cache_returns_same_object(self, rns_basis):
        first = plan_stack_for(rns_basis.moduli, rns_basis.degree)
        second = plan_stack_for(rns_basis.moduli, rns_basis.degree)
        assert first is second

    def test_bitrev_cache_returns_same_object(self):
        assert bit_reverse_indices(256) is bit_reverse_indices(256)
        assert not bit_reverse_indices(256).flags.writeable

    def test_conversion_cache_returns_same_object(self, rns_basis):
        source = RnsBasis(moduli=rns_basis.moduli[:2], degree=rns_basis.degree)
        target = RnsBasis(moduli=rns_basis.moduli[2:], degree=rns_basis.degree)
        assert conversion_for(source, target) is conversion_for(source, target)

    def test_polyring_delegates_to_cached_plan(self, ring):
        assert ring.plan is plan_for(ring.degree, ring.modulus)

    def test_plan_cache_rejects_mismatched_psi(self, ring):
        plan = plan_for(ring.degree, ring.modulus)
        other_psi = pow(plan.psi, 3, ring.modulus)  # another primitive 2N-th root
        assert other_psi != plan.psi
        with pytest.raises(ValueError):
            plan_for(ring.degree, ring.modulus, psi=other_psi)


class TestFallbacks:
    def test_plan_rejects_modulus_too_wide_for_any_backend(self):
        # 31-bit at N=2^13: beyond the butterfly's lazy bound AND the
        # four-step split budget at that degree's factorisation.
        wide = MAX_PLAN_MODULUS + 3
        assert not supports((wide,), 1 << 13)
        with pytest.raises(ValueError):
            NttPlan(degree=1 << 13, modulus=wide, psi=1)

    def test_supports_bound(self, rns_basis):
        assert supports(rns_basis.moduli)
        assert not supports((MAX_PLAN_MODULUS + 1,))

    def test_wide_modulus_small_degree_plans_four_step(self, rng, monkeypatch):
        """A 31-bit prime exceeds the lazy bound but the GEMM split is exact
        at N=64, so PolyRing now plans it (four-step) and stays bit-exact."""
        from repro.numtheory.primes import generate_ntt_prime
        from repro.poly.ntt_engine import BACKEND_FOUR_STEP

        # Auto-dispatch semantics under test: clear any matrix-leg pin.
        monkeypatch.delenv("REPRO_NTT_BACKEND", raising=False)

        prime = generate_ntt_prime(31, 64)
        assert prime >= MAX_PLAN_MODULUS
        assert supports((prime,), 64)
        ring = PolyRing(degree=64, modulus=prime)
        assert ring.plan is not None
        assert not ring.plan.butterfly_ok
        assert ring.plan.resolve_backend() == BACKEND_FOUR_STEP
        x = ring.random_uniform(rng)
        assert np.array_equal(ring.ntt(x), ntt_forward_negacyclic(x, prime, ring.psi))
        assert np.array_equal(ring.intt(ring.ntt(x)), x)

    def test_oversized_basis_falls_back_per_limb(self, rng):
        from repro.numtheory.primes import generate_ntt_prime

        prime = generate_ntt_prime(31, 64)
        basis = RnsBasis(moduli=(prime,), degree=64)
        poly = RnsPolynomial(basis, rng.integers(0, prime, (1, 64), dtype=np.uint64))
        transformed = poly.to_eval()
        assert transformed.domain == EVAL_DOMAIN
        assert np.array_equal(poly.to_eval().to_coeff().residues, poly.residues)


class TestRnsPolynomialFastPaths:
    def test_to_eval_noop_returns_self(self, rns_basis, rng):
        poly = RnsPolynomial(
            rns_basis, _random_matrix(rng, rns_basis.moduli, rns_basis.degree)
        )
        evaluated = poly.to_eval()
        assert evaluated.to_eval() is evaluated
        assert poly.to_coeff() is poly

    def test_signed_coefficients_vectorized_matches_bigint(self, rng):
        basis = RnsBasis.generate(2, 24, 32)
        assert basis.modulus_product < 2**63  # vectorized centering path
        matrix = _random_matrix(rng, basis.moduli, 32)
        poly = RnsPolynomial(basis, matrix)
        big_q = basis.modulus_product
        half = big_q // 2
        expected = [
            c - big_q if c > half else c for c in poly.to_int_coefficients()
        ]
        assert poly.to_signed_coefficients() == expected

    def test_automorphism_batched_matches_per_limb(self, rns_basis, rng):
        poly = RnsPolynomial(
            rns_basis, _random_matrix(rng, rns_basis.moduli, rns_basis.degree)
        )
        rotated = poly.automorphism(7)
        for index in range(poly.limb_count):
            expected = poly.ring(index).automorphism(poly.residues[index], 7)
            assert np.array_equal(rotated.residues[index], expected)


class TestComposeArrayFastPath:
    @pytest.mark.parametrize("limbs", [1, 2])
    def test_small_basis_matches_generic_crt(self, limbs, rng):
        basis = RnsBasis.generate(limbs, 28, 16)
        residues = _random_matrix(rng, basis.moduli, 16)
        fast = basis.compose_array(residues)
        expected = [
            crt_compose([int(residues[i, j]) for i in range(limbs)], list(basis.moduli))
            for j in range(16)
        ]
        assert fast == expected
        assert all(isinstance(v, int) for v in fast)

    def test_unreduced_residues_still_compose(self):
        basis = RnsBasis.generate(2, 20, 4)
        q0, q1 = basis.moduli
        residues = np.array(
            [[q0 + 3] * 4, [q1 + 5] * 4], dtype=np.uint64
        )
        expected = crt_compose([3, 5], list(basis.moduli))
        assert basis.compose_array(residues) == [expected] * 4

    def test_signed_residues_use_exact_path(self):
        """Negative residues must reduce like Python ints, not wrap as uint64."""
        basis = RnsBasis.generate(2, 20, 3)
        residues = np.full((2, 3), -1, dtype=np.int64)
        expected = crt_compose([-1, -1], list(basis.moduli))
        assert basis.compose_array(residues) == [expected] * 3
