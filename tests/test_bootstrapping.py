"""Tests for packed bootstrapping: executable C2S/S2C + the schedule model.

The schedule-model tests mirror the paper's Table IX methodology; the
executable-transform tests pin down the special-FFT factorisation of the
encoder's Vandermonde embedding and the homomorphic
CoeffToSlot -> SlotToCoeff round trip on the exact CKKS stack.
"""

from math import sqrt

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksEvaluator,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.ckks.bootstrapping import (
    BootstrappingSchedule,
    CkksBootstrapper,
    _dense,
    build_bootstrapping_transforms,
    coeff_to_slot,
    coeff_to_slot_split,
    collapsed_fft_factors,
    composed_matrix,
    estimate_bootstrapping,
    mod_raise,
    slot_permutation,
    slot_to_coeff,
    slot_to_coeff_merge,
    special_fft_matrix,
    special_fft_stage_diagonals,
)
from repro.ckks.poly_eval import ps_operation_counts
from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.numtheory.bitrev import bit_reverse_indices, permutation_matrix
from repro.tpu import TensorCoreDevice

#: Acceptance bar for the homomorphic round trip at the functional set.
ROUNDTRIP_RELATIVE_ERROR = 2.0**-20


@pytest.fixture(scope="module")
def functional_env():
    """The functional parameter set for executable-bootstrapping tests.

    Ten 30-bit limbs at degree 64 (scale 2^29) leave enough level and
    precision budget for a depth-(3+2) transform ladder; ``dnum = 5`` keeps
    the per-digit modulus far below the special product so hoisted-BConv
    noise stays out of the way, and the reduced error width is the standard
    functional-rig concession (a 64-degree ring is insecure regardless -- the
    suite tests arithmetic, not security).
    """
    params = CkksParameters.create(
        degree=64, limbs=10, log_q=30, dnum=5, scale_bits=29, special_limbs=3
    )
    params.error_stddev = 1.0
    keygen = KeyGenerator(params, rng=np.random.default_rng(3))
    encoder = CkksEncoder(params)
    transforms = build_bootstrapping_transforms(encoder, c2s_depth=3, s2c_depth=2)
    galois_keys = keygen.galois_keys_for_steps(
        transforms.rotation_steps(), conjugation=True
    )
    evaluator = CkksEvaluator(params, galois_keys=galois_keys)
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    rng = np.random.default_rng(5)
    z = rng.uniform(-1, 1, params.slot_count) + 1j * rng.uniform(
        -1, 1, params.slot_count
    )
    ciphertext = encryptor.encrypt(encoder.encode(z))
    return {
        "params": params,
        "encoder": encoder,
        "transforms": transforms,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
        "z": z,
        "ct": ciphertext,
    }


def decode(env, ciphertext):
    return env["encoder"].decode(env["decryptor"].decrypt(ciphertext))


@pytest.fixture(scope="module")
def compiler():
    return CrossCompiler(PARAMETER_SETS["D"], CompilerOptions.cross_default())


@pytest.fixture(scope="module")
def device():
    return TensorCoreDevice.for_generation("TPUv6e")


class TestSchedule:
    def test_counts_positive(self):
        schedule = BootstrappingSchedule(degree=2**16)
        counts = schedule.operator_counts()
        assert all(count > 0 for count in counts.values())
        assert set(counts) == {"rotate", "he_mult", "rescale", "he_add"}

    def test_rotations_dominate(self):
        """The linear transforms make Rotate the most frequent operator."""
        counts = BootstrappingSchedule(degree=2**16).operator_counts()
        assert counts["rotate"] > counts["he_mult"]

    def test_scaling_with_degree(self):
        small = BootstrappingSchedule(degree=2**13).rotation_count
        large = BootstrappingSchedule(degree=2**16).rotation_count
        assert large >= small


class TestEstimate:
    def test_estimate_structure(self, compiler, device):
        estimate = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert estimate.latency_ms > 0
        assert set(estimate.operator_latencies) == {"rotate", "he_mult", "rescale", "he_add"}
        assert abs(sum(estimate.breakdown.values()) - 1.0) < 1e-9

    def test_more_cores_lower_latency(self, compiler, device):
        one = estimate_bootstrapping(compiler, device, tensor_cores=1)
        eight = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert eight.latency_s == pytest.approx(one.latency_s / 8)

    def test_cross_beats_gpu_baseline_schedule(self, compiler, device):
        baseline_compiler = CrossCompiler(PARAMETER_SETS["D"], CompilerOptions.gpu_baseline())
        cross = estimate_bootstrapping(compiler, device, tensor_cores=8)
        baseline = estimate_bootstrapping(baseline_compiler, device, tensor_cores=8)
        assert cross.latency_s < baseline.latency_s

    def test_newer_tpu_is_faster(self, compiler):
        v4 = estimate_bootstrapping(compiler, TensorCoreDevice.for_generation("TPUv4"), tensor_cores=8)
        v6e = estimate_bootstrapping(compiler, TensorCoreDevice.for_generation("TPUv6e"), tensor_cores=8)
        assert v6e.latency_s < v4.latency_s

    def test_breakdown_has_vec_and_permutation_costs(self, compiler, device):
        estimate = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert "VecModOps" in estimate.breakdown
        assert "Automorphism" in estimate.breakdown


class TestPerPhaseScheduleCounts:
    """The satellite fix: SlotToCoeff is priced from its own depth."""

    def test_symmetric_schedule_unchanged(self):
        schedule = BootstrappingSchedule(degree=2**16)
        per_level = schedule.rotations_per_linear_level
        assert schedule.rotation_count == 6 * per_level

    def test_asymmetric_phases_priced_separately(self):
        schedule = BootstrappingSchedule(degree=2**16, c2s_levels=3, s2c_levels=1)
        assert schedule.c2s_rotation_count == 3 * schedule.rotations_per_level(3)
        assert schedule.s2c_rotation_count == 1 * schedule.rotations_per_level(1)
        # A depth-1 SlotToCoeff is one dense transform: far more rotations
        # per level than the depth-3 factorisation.
        assert schedule.rotations_per_level(1) > schedule.rotations_per_level(3)
        assert (
            schedule.rotation_count
            == schedule.c2s_rotation_count + schedule.s2c_rotation_count
        )

    def test_s2c_levels_affect_total(self):
        shallow = BootstrappingSchedule(degree=2**16, c2s_levels=3, s2c_levels=1)
        deep = BootstrappingSchedule(degree=2**16, c2s_levels=3, s2c_levels=3)
        assert shallow.s2c_rotation_count != deep.s2c_rotation_count
        assert shallow.c2s_rotation_count == deep.c2s_rotation_count

    def test_measured_overrides(self):
        schedule = BootstrappingSchedule(
            degree=2**16, c2s_rotations=100, s2c_rotations=50,
            plain_multiplications=321,
        )
        assert schedule.rotation_count == 150
        assert schedule.plain_multiplication_count == 321

    def test_rescales_count_both_phases(self):
        schedule = BootstrappingSchedule(degree=2**16, c2s_levels=4, s2c_levels=2)
        assert schedule.rescale_count == 4 + 2 + schedule.multiplication_count

    def test_evalmod_counts_come_from_ps_plan(self):
        """The bugfix: no hard-coded EvalMod guesses in the analytic model."""
        schedule = BootstrappingSchedule(degree=2**16)
        plan = ps_operation_counts(schedule.evalmod_degree)
        assert schedule.evalmod_multiplications is None
        assert schedule.multiplication_count == plan["he_mult"]
        assert schedule.evalmod_addition_count == plan["he_add"]
        # The degree-63 plan lands at ~2*sqrt(63), where the old guess of 16
        # happened to sit -- now computed, not asserted.
        assert abs(schedule.multiplication_count - 2 * sqrt(63)) <= 4

    def test_evalmod_measured_overrides(self):
        schedule = BootstrappingSchedule(
            degree=2**16, evalmod_multiplications=40, evalmod_additions=80
        )
        assert schedule.multiplication_count == 40
        assert schedule.evalmod_addition_count == 80
        assert schedule.rescale_count == 3 + 3 + 40


class TestSpecialFftFactorisation:
    """The embedding ``W = F @ P`` factors into radix-2 butterfly stages."""

    @pytest.mark.parametrize("slots", [4, 8, 32])
    def test_stages_compose_to_embedding(self, slots):
        stages = [
            _dense(special_fft_stage_diagonals(slots, 1 << (s + 1)), slots)
            for s in range(int(np.log2(slots)))
        ]
        product = np.eye(slots, dtype=complex)
        for stage in stages:
            product = stage @ product
        bitrev = permutation_matrix(bit_reverse_indices(slots)).astype(float)
        assert np.allclose(product @ bitrev, special_fft_matrix(slots))

    @pytest.mark.parametrize("slots", [8, 32])
    def test_stage_inverses(self, slots):
        for s in range(int(np.log2(slots))):
            length = 1 << (s + 1)
            stage = _dense(special_fft_stage_diagonals(slots, length), slots)
            inverse = _dense(
                special_fft_stage_diagonals(slots, length, inverse=True), slots
            )
            assert np.allclose(inverse @ stage, np.eye(slots))

    def test_stages_are_three_diagonal(self):
        slots = 32
        for s in range(int(np.log2(slots)) - 1):  # top stage merges +/-h
            diagonals = special_fft_stage_diagonals(slots, 1 << (s + 1))
            assert len(diagonals) == 3
        top = special_fft_stage_diagonals(slots, slots)
        assert set(top) == {0, slots // 2}

    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_collapsed_factors_compose_exactly(self, depth):
        slots = 32
        forward = collapsed_fft_factors(slots, depth)
        product = np.eye(slots, dtype=complex)
        for factor in forward:
            product = _dense(factor, slots) @ product
        full = collapsed_fft_factors(slots, int(np.log2(slots)))
        reference = np.eye(slots, dtype=complex)
        for factor in full:
            reference = _dense(factor, slots) @ reference
        assert np.allclose(product, reference)
        inverse = collapsed_fft_factors(slots, depth, inverse=True)
        inv_product = np.eye(slots, dtype=complex)
        for factor in inverse:
            inv_product = _dense(factor, slots) @ inv_product
        assert np.allclose(inv_product @ product, np.eye(slots))

    def test_normalised_factors_scale_by_sqrt_slots(self):
        slots = 32
        plain = collapsed_fft_factors(slots, 3, inverse=True)
        normalised = collapsed_fft_factors(slots, 3, inverse=True, normalised=True)
        scale = np.sqrt(slots)
        product_plain = np.eye(slots, dtype=complex)
        for factor in plain:
            product_plain = _dense(factor, slots) @ product_plain
        product_norm = np.eye(slots, dtype=complex)
        for factor in normalised:
            product_norm = _dense(factor, slots) @ product_norm
        assert np.allclose(product_norm, scale * product_plain)

    def test_depth_bounds_enforced(self):
        with pytest.raises(ValueError):
            collapsed_fft_factors(32, 0)
        with pytest.raises(ValueError):
            collapsed_fft_factors(32, 6)


class TestHomomorphicTransforms:
    """CoeffToSlot / SlotToCoeff running on the exact CKKS stack."""

    def test_c2s_matches_numpy_ladder(self, functional_env):
        env = functional_env
        result = coeff_to_slot(env["evaluator"], env["transforms"], env["ct"])
        expected = composed_matrix(env["transforms"].coeff_to_slot) @ env["z"]
        assert np.abs(decode(env, result) - expected).max() < 1e-4
        assert result.level == env["ct"].level - env["transforms"].c2s_depth

    def test_c2s_slots_hold_bit_reversed_coefficients(self, functional_env):
        """The C2S output genuinely *is* the coefficient vector, packed."""
        env = functional_env
        encoder, params = env["encoder"], env["params"]
        slots = params.slot_count
        plain = encoder.encode(env["z"])
        coefficients = (
            np.array(
                [float(c) for c in plain.poly.to_coeff().to_signed_coefficients()]
            )
            / plain.scale
        )
        packed = coefficients[:slots] + 1j * coefficients[slots:]
        expected = env["transforms"].coefficient_scaling * packed[
            slot_permutation(env["transforms"])
        ]
        result = coeff_to_slot(env["evaluator"], env["transforms"], env["ct"])
        assert np.abs(decode(env, result) - expected).max() < 1e-4

    def test_scale_invariant_across_ladder(self, functional_env):
        """Level-matched plaintext scales keep the ciphertext scale fixed."""
        env = functional_env
        result = coeff_to_slot(env["evaluator"], env["transforms"], env["ct"])
        assert result.scale == pytest.approx(env["ct"].scale, rel=1e-12)

    def test_roundtrip_within_precision_bar(self, functional_env):
        """S2C(C2S(ct)) decodes to the input within 2^-20 relative error."""
        env = functional_env
        mid = coeff_to_slot(env["evaluator"], env["transforms"], env["ct"])
        back = slot_to_coeff(env["evaluator"], env["transforms"], mid)
        decoded = decode(env, back)
        relative = np.abs(decoded - env["z"]).max() / np.abs(env["z"]).max()
        assert relative < ROUNDTRIP_RELATIVE_ERROR

    def test_roundtrip_second_message(self, functional_env):
        env = functional_env
        rng = np.random.default_rng(23)
        z = rng.uniform(-1, 1, env["params"].slot_count) + 1j * rng.uniform(
            -1, 1, env["params"].slot_count
        )
        ct = env["encryptor"].encrypt(env["encoder"].encode(z))
        back = slot_to_coeff(
            env["evaluator"],
            env["transforms"],
            coeff_to_slot(env["evaluator"], env["transforms"], ct),
        )
        relative = np.abs(decode(env, back) - z).max() / np.abs(z).max()
        assert relative < ROUNDTRIP_RELATIVE_ERROR

    def test_conjugation_split_yields_real_halves(self, functional_env):
        env = functional_env
        lo, hi = coeff_to_slot_split(env["evaluator"], env["transforms"], env["ct"])
        lo_slots, hi_slots = decode(env, lo), decode(env, hi)
        assert np.abs(lo_slots.imag).max() < 1e-3
        assert np.abs(hi_slots.imag).max() < 1e-3
        packed = coeff_to_slot(env["evaluator"], env["transforms"], env["ct"])
        packed_slots = decode(env, packed)
        assert np.abs(lo_slots.real - packed_slots.real).max() < 1e-3
        assert np.abs(hi_slots.real - packed_slots.imag).max() < 1e-3

    def test_split_merge_roundtrip(self, functional_env):
        env = functional_env
        lo, hi = coeff_to_slot_split(env["evaluator"], env["transforms"], env["ct"])
        back = slot_to_coeff_merge(env["evaluator"], env["transforms"], lo, hi)
        relative = np.abs(decode(env, back) - env["z"]).max() / np.abs(
            env["z"]
        ).max()
        # Two extra plaintext multiplications widen the error bar slightly.
        assert relative < 2.0**-16


class TestScheduleValidatedAgainstMeasurement:
    """The analytic cost model vs the real ladders' rotation counts."""

    def test_from_transforms_uses_measured_counts(self, functional_env):
        env = functional_env
        transforms = env["transforms"]
        schedule = BootstrappingSchedule.from_transforms(
            env["params"].degree, transforms
        )
        assert schedule.c2s_rotation_count == transforms.c2s_rotation_count()
        assert schedule.s2c_rotation_count == transforms.s2c_rotation_count()
        assert schedule.c2s_levels == transforms.c2s_depth
        assert schedule.s2c_levels == transforms.s2c_depth
        assert (
            schedule.plain_multiplication_count
            == transforms.plain_multiplication_count()
        )

    def test_analytic_model_within_factor_two_of_measured(self, functional_env):
        env = functional_env
        transforms = env["transforms"]
        measured = BootstrappingSchedule.from_transforms(
            env["params"].degree, transforms
        )
        analytic = BootstrappingSchedule(
            degree=env["params"].degree,
            c2s_levels=transforms.c2s_depth,
            s2c_levels=transforms.s2c_depth,
        )
        for phase in ("c2s_rotation_count", "s2c_rotation_count"):
            measured_count = getattr(measured, phase)
            analytic_count = getattr(analytic, phase)
            ratio = measured_count / analytic_count
            assert 0.5 <= ratio <= 2.0, (phase, measured_count, analytic_count)

    def test_transform_rotation_steps_cover_factors(self, functional_env):
        transforms = functional_env["transforms"]
        union = set(transforms.rotation_steps())
        for factor in (*transforms.coeff_to_slot, *transforms.slot_to_coeff):
            assert set(factor.rotation_steps()) <= union


# ---------------------------------------------------------------------------
# End-to-end bootstrapping: ModRaise -> C2S -> EvalMod -> S2C
# ---------------------------------------------------------------------------

#: Acceptance bar for the full pipeline at the functional set (ISSUE 4).
BOOTSTRAP_RELATIVE_ERROR = 2.0**-10


@pytest.fixture(scope="module")
def bootstrap_env():
    """A full bootstrapping rig at the functional parameter set.

    Twenty 29-bit limbs at degree 64 cover the pipeline's minimum level
    (1 + c2s 2 + split 1 + EvalMod ~10 + merge 1 + s2c 2); ``scale_bits =
    log_q`` keeps the scale stationary under the deep rescale chain, and the
    sparse secret (``hamming_weight=4``) bounds ModRaise's overflow by
    ``(||s||_1 + 1)/2 <= 2.5`` so EvalMod's ``k_bound=3`` sine fit covers it
    -- the standard sparse-secret bootstrapping assumption.
    """
    params = CkksParameters.create(
        degree=64, limbs=20, log_q=29, dnum=10, scale_bits=29, special_limbs=3
    )
    params.error_stddev = 1.0
    keygen = KeyGenerator(params, rng=np.random.default_rng(11), hamming_weight=4)
    encoder = CkksEncoder(params)
    bootstrapper = CkksBootstrapper.create(encoder)
    assert bootstrapper.minimum_level() <= params.limbs
    galois_keys = keygen.galois_keys_for_steps(
        bootstrapper.rotation_steps(), conjugation=True
    )
    evaluator = CkksEvaluator(
        params, relin_key=keygen.relinearization_key(), galois_keys=galois_keys
    )
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    rng = np.random.default_rng(13)
    amplitude = 0.01
    z = amplitude * (
        rng.uniform(-1, 1, params.slot_count)
        + 1j * rng.uniform(-1, 1, params.slot_count)
    )
    exhausted = encryptor.encrypt(encoder.encode(z, level=1))
    return {
        "params": params,
        "encoder": encoder,
        "bootstrapper": bootstrapper,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
        "z": z,
        "ct": exhausted,
    }


class TestModRaise:
    def test_requires_exhausted_ciphertext(self, bootstrap_env):
        env = bootstrap_env
        fresh = env["encryptor"].encrypt(env["encoder"].encode(env["z"]))
        with pytest.raises(ValueError):
            mod_raise(fresh, env["params"])

    def test_raised_decryption_is_message_plus_q0_ladder(self, bootstrap_env):
        """decrypt(ModRaise(ct)) = m + q_0 * I with small integer I."""
        env = bootstrap_env
        params = env["params"]
        q0 = params.modulus_basis.moduli[0]
        raised = mod_raise(env["ct"], params)
        assert raised.level == params.limbs
        assert raised.scale == env["ct"].scale
        base = np.array(
            [
                int(c)
                for c in env["decryptor"].decrypt(env["ct"]).poly.to_signed_coefficients()
            ],
            dtype=object,
        )
        lifted = np.array(
            [
                int(c)
                for c in env["decryptor"]
                .decrypt(raised)
                .poly.to_signed_coefficients()
            ],
            dtype=object,
        )
        overflow = lifted - base
        assert all(int(v) % q0 == 0 for v in overflow)
        ladder = np.array([int(v) // q0 for v in overflow], dtype=np.int64)
        # Sparse secret (h=4): |I| <= (||s||_1 + 1)/2 + 1 slack.
        assert np.abs(ladder).max() <= 3

    def test_raise_to_partial_chain(self, bootstrap_env):
        env = bootstrap_env
        raised = mod_raise(env["ct"], env["params"], level=5)
        assert raised.level == 5


class TestEndToEndBootstrap:
    def test_bootstrap_refreshes_exhausted_ciphertext(self, bootstrap_env):
        """The acceptance criterion: full pipeline, <= 2^-10 relative error."""
        env = bootstrap_env
        refreshed = env["bootstrapper"].bootstrap(env["evaluator"], env["ct"])
        assert refreshed.level > env["ct"].level
        decoded = env["encoder"].decode(env["decryptor"].decrypt(refreshed))
        relative = np.abs(decoded - env["z"]).max() / np.abs(env["z"]).max()
        assert relative < BOOTSTRAP_RELATIVE_ERROR

    def test_refreshed_ciphertext_has_multiplicative_budget(self, bootstrap_env):
        """The point of bootstrapping: the output supports further levels."""
        env = bootstrap_env
        refreshed = env["bootstrapper"].bootstrap(env["evaluator"], env["ct"])
        assert refreshed.level >= 3
        # Spend one of the regained levels on a plaintext multiplication.
        two = env["encoder"].encode_constant(
            2.0, level=refreshed.level, scale=env["params"].scale
        )
        doubled = env["evaluator"].rescale(
            env["evaluator"].multiply_plain(refreshed, two)
        )
        decoded = env["encoder"].decode(env["decryptor"].decrypt(doubled))
        relative = np.abs(decoded - 2.0 * env["z"]).max() / np.abs(
            2.0 * env["z"]
        ).max()
        assert relative < 2.0**-8

    @pytest.mark.slow
    def test_bootstrap_second_message(self, bootstrap_env):
        env = bootstrap_env
        rng = np.random.default_rng(29)
        z = 0.005 * (
            rng.uniform(-1, 1, env["params"].slot_count)
            + 1j * rng.uniform(-1, 1, env["params"].slot_count)
        )
        ct = env["encryptor"].encrypt(env["encoder"].encode(z, level=1))
        refreshed = env["bootstrapper"].bootstrap(env["evaluator"], ct)
        decoded = env["encoder"].decode(env["decryptor"].decrypt(refreshed))
        relative = np.abs(decoded - z).max() / np.abs(z).max()
        assert relative < BOOTSTRAP_RELATIVE_ERROR

    def test_bootstrap_real_message(self, bootstrap_env):
        """A purely real message exercises the hi-half zero path."""
        env = bootstrap_env
        rng = np.random.default_rng(31)
        z = 0.01 * rng.uniform(-1, 1, env["params"].slot_count)
        ct = env["encryptor"].encrypt(env["encoder"].encode(z, level=1))
        refreshed = env["bootstrapper"].bootstrap(env["evaluator"], ct)
        decoded = env["encoder"].decode(env["decryptor"].decrypt(refreshed))
        assert np.abs(decoded - z).max() / np.abs(z).max() < BOOTSTRAP_RELATIVE_ERROR


class TestScheduleGroundedInMeasurement:
    """The satellite bugfix: EvalMod counts measured, not guessed."""

    def test_measured_he_mults_match_schedule(self, bootstrap_env):
        """Run the real pipeline under the operation counter and compare."""
        env = bootstrap_env
        evaluator = env["evaluator"]
        bootstrapper = env["bootstrapper"]
        evaluator.reset_operation_counts()
        bootstrapper.bootstrap(evaluator, env["ct"])
        measured = dict(evaluator.operation_counts)
        evaluator.reset_operation_counts()
        schedule = bootstrapper.schedule()
        # Ciphertext x ciphertext multiplications come only from the two
        # EvalMod halves, and the schedule takes them from the PS plan.
        assert measured["he_mult"] == schedule.multiplication_count
        assert measured["rotate"] == schedule.rotation_count

    def test_analytic_vs_planned_evalmod_within_factor_two(self, bootstrap_env):
        """The ~2*sqrt(d) analytic model vs the exact plan of the real fit."""
        env = bootstrap_env
        evalmod = env["bootstrapper"].evalmod
        planned = evalmod.multiplication_count()
        analytic = 2 * sqrt(evalmod.series.degree)
        assert 0.5 <= planned / analytic <= 2.0

    def test_from_transforms_with_evalmod(self, bootstrap_env):
        env = bootstrap_env
        bootstrapper = env["bootstrapper"]
        schedule = BootstrappingSchedule.from_transforms(
            env["params"].degree,
            bootstrapper.transforms,
            evalmod=bootstrapper.evalmod,
        )
        assert (
            schedule.multiplication_count
            == 2 * bootstrapper.evalmod.multiplication_count()
        )
        assert schedule.evalmod_degree == bootstrapper.evalmod.series.degree
        assert schedule.c2s_levels == bootstrapper.transforms.c2s_depth
