"""Tests for the packed-bootstrapping schedule model (paper Table IX)."""

import pytest

from repro.ckks.bootstrapping import BootstrappingSchedule, estimate_bootstrapping
from repro.core.compiler import CompilerOptions, CrossCompiler
from repro.core.config import PARAMETER_SETS
from repro.tpu import TensorCoreDevice


@pytest.fixture(scope="module")
def compiler():
    return CrossCompiler(PARAMETER_SETS["D"], CompilerOptions.cross_default())


@pytest.fixture(scope="module")
def device():
    return TensorCoreDevice.for_generation("TPUv6e")


class TestSchedule:
    def test_counts_positive(self):
        schedule = BootstrappingSchedule(degree=2**16)
        counts = schedule.operator_counts()
        assert all(count > 0 for count in counts.values())
        assert set(counts) == {"rotate", "he_mult", "rescale", "he_add"}

    def test_rotations_dominate(self):
        """The linear transforms make Rotate the most frequent operator."""
        counts = BootstrappingSchedule(degree=2**16).operator_counts()
        assert counts["rotate"] > counts["he_mult"]

    def test_scaling_with_degree(self):
        small = BootstrappingSchedule(degree=2**13).rotation_count
        large = BootstrappingSchedule(degree=2**16).rotation_count
        assert large >= small


class TestEstimate:
    def test_estimate_structure(self, compiler, device):
        estimate = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert estimate.latency_ms > 0
        assert set(estimate.operator_latencies) == {"rotate", "he_mult", "rescale", "he_add"}
        assert abs(sum(estimate.breakdown.values()) - 1.0) < 1e-9

    def test_more_cores_lower_latency(self, compiler, device):
        one = estimate_bootstrapping(compiler, device, tensor_cores=1)
        eight = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert eight.latency_s == pytest.approx(one.latency_s / 8)

    def test_cross_beats_gpu_baseline_schedule(self, compiler, device):
        baseline_compiler = CrossCompiler(PARAMETER_SETS["D"], CompilerOptions.gpu_baseline())
        cross = estimate_bootstrapping(compiler, device, tensor_cores=8)
        baseline = estimate_bootstrapping(baseline_compiler, device, tensor_cores=8)
        assert cross.latency_s < baseline.latency_s

    def test_newer_tpu_is_faster(self, compiler):
        v4 = estimate_bootstrapping(compiler, TensorCoreDevice.for_generation("TPUv4"), tensor_cores=8)
        v6e = estimate_bootstrapping(compiler, TensorCoreDevice.for_generation("TPUv6e"), tensor_cores=8)
        assert v6e.latency_s < v4.latency_s

    def test_breakdown_has_vec_and_permutation_costs(self, compiler, device):
        estimate = estimate_bootstrapping(compiler, device, tensor_cores=8)
        assert "VecModOps" in estimate.breakdown
        assert "Automorphism" in estimate.breakdown
