"""Tests for byte-chunk decomposition and merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import chunk_count, chunk_decompose, chunk_merge


class TestChunkCount:
    def test_paper_default(self):
        # 28-bit moduli on an 8-bit MXU need K = 4 chunks.
        assert chunk_count((1 << 28) - 57) == 4

    @pytest.mark.parametrize(
        "modulus,expected", [(255, 1), (257, 2), (65535, 2), ((1 << 24) + 1, 4), ((1 << 32) - 1, 4)]
    )
    def test_various(self, modulus, expected):
        assert chunk_count(modulus) == expected

    def test_custom_chunk_bits(self):
        assert chunk_count((1 << 28) - 57, chunk_bits=16) == 2

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            chunk_count(1)


class TestDecomposeMerge:
    def test_known_value(self):
        chunks = chunk_decompose(0x0A0B0C0D, 4)
        assert chunks.tolist() == [0x0D, 0x0C, 0x0B, 0x0A]

    def test_merge_inverse(self):
        value = np.array([123456789, 0, 1, (1 << 32) - 1], dtype=np.uint64)
        assert np.array_equal(chunk_merge(chunk_decompose(value, 4)), value)

    def test_overflow_detected(self):
        with pytest.raises(ValueError):
            chunk_decompose(1 << 32, 4)

    def test_matrix_input(self, rng):
        values = rng.integers(0, 1 << 32, size=(5, 7), dtype=np.uint64)
        chunks = chunk_decompose(values, 4)
        assert chunks.shape == (5, 7, 4)
        assert np.array_equal(chunk_merge(chunks), values)

    def test_merge_with_uncarried_chunks(self):
        # Merge tolerates chunk values above 255 (un-carried partial sums).
        chunks = np.array([300, 2, 0, 0], dtype=np.uint64)
        assert int(chunk_merge(chunks)) == 300 + 2 * 256

    def test_sixteen_bit_chunks(self):
        chunks = chunk_decompose(0xDEADBEEF, 2, chunk_bits=16)
        assert chunks.tolist() == [0xBEEF, 0xDEAD]
        assert int(chunk_merge(chunks, chunk_bits=16)) == 0xDEADBEEF

    @given(value=st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, value):
        assert int(chunk_merge(chunk_decompose(value, 4))) == value

    @given(
        value=st.integers(min_value=0, max_value=(1 << 48) - 1),
        chunk_bits=st.sampled_from([4, 8, 12, 16]),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip_any_width(self, value, chunk_bits):
        num = -(-48 // chunk_bits)
        assert int(chunk_merge(chunk_decompose(value, num, chunk_bits), chunk_bits)) == value
