"""Concurrency tests: shared evaluators, plan caches, and LRU thread safety.

The serving runtime shares one :class:`~repro.ckks.evaluator.CkksEvaluator`
per tenant across every worker thread, and all tenants share the process
wide NTT plan caches.  These tests pin down the property that makes that
sharing sound: N threads evaluating *disjoint* ciphertexts through one
evaluator produce results **bit-exact** against the serial run -- including
while a quarantine flips the dispatch ladder mid-flight -- and the bounded
LRU caches never corrupt, deadlock, or overflow under contention.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksEvaluator,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.diagnostics import BoundedLruCache, WeakCacheGroup
from repro.poly import ntt_engine

THREADS = 8
PER_THREAD = 3


@pytest.fixture(scope="module")
def shared_setup():
    params = CkksParameters.create(
        degree=64, limbs=4, log_q=28, dnum=2, scale_bits=26
    )
    keygen = KeyGenerator(params, rng=np.random.default_rng(11))
    rotation = pow(5, 1, 2 * params.degree)
    return {
        "params": params,
        "encoder": CkksEncoder(params),
        "encryptor": Encryptor(params, keygen.public_key(), keygen),
        "decryptor": Decryptor(params, keygen.secret_key),
        "evaluator": CkksEvaluator(
            params,
            relin_key=keygen.relinearization_key(),
            galois_keys=keygen.galois_keys([rotation]),
        ),
    }


def _make_inputs(setup, count):
    rng = np.random.default_rng(99)
    slots = setup["params"].slot_count
    out = []
    for _ in range(count):
        vec = rng.uniform(-1, 1, slots)
        weights = setup["encoder"].encode(rng.uniform(-1, 1, slots))
        out.append((setup["encryptor"].encrypt(setup["encoder"].encode(vec)), weights))
    return out


def _circuit(evaluator, ciphertext, weights):
    """mult_plain -> rescale -> rotate -> square -> rescale: exercises the
    plaintext cache, the key-switch digit cache, and both NTT directions."""
    scaled = evaluator.rescale(evaluator.multiply_plain(ciphertext, weights))
    rotated = evaluator.rotate(scaled, 1)
    return evaluator.rescale(evaluator.square(rotated))


def _residues(ciphertext):
    parts = [ciphertext.c0.residues.copy(), ciphertext.c1.residues.copy()]
    if getattr(ciphertext, "c2", None) is not None:
        parts.append(ciphertext.c2.residues.copy())
    return parts


def _run_threaded(setup, inputs, *, midflight=None):
    """Evaluate every input once, spread over THREADS threads.

    ``midflight`` is an optional callback fired from a coordinator thread
    once all workers have passed the start barrier (i.e. while circuits are
    genuinely in flight).
    """
    evaluator = setup["evaluator"]
    results: list = [None] * len(inputs)
    errors: list = []
    barrier = threading.Barrier(THREADS + (1 if midflight else 0))

    def worker(thread_index):
        try:
            barrier.wait(timeout=10.0)
            for task_index in range(
                thread_index, len(inputs), THREADS
            ):
                ciphertext, weights = inputs[task_index]
                results[task_index] = _circuit(evaluator, ciphertext, weights)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    if midflight:
        barrier.wait(timeout=10.0)
        midflight()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "worker hung"
    assert not errors, errors
    return results


class TestSharedEvaluator:
    def test_threads_match_serial_bit_exact(self, shared_setup):
        inputs = _make_inputs(shared_setup, THREADS * PER_THREAD)
        serial = [
            _residues(_circuit(shared_setup["evaluator"], ct, w))
            for ct, w in inputs
        ]
        threaded = _run_threaded(shared_setup, inputs)
        for expected, got in zip(serial, threaded):
            for expected_part, got_part in zip(expected, _residues(got)):
                assert np.array_equal(expected_part, got_part)

    def test_bit_exact_across_midflight_quarantine(self, shared_setup):
        """Quarantining the fast backend while circuits are in flight reroutes
        dispatch (different backend, same ring) without changing one bit."""
        inputs = _make_inputs(shared_setup, THREADS * PER_THREAD)
        serial = [
            _residues(_circuit(shared_setup["evaluator"], ct, w))
            for ct, w in inputs
        ]

        def quarantine_fast_backend():
            ntt_engine.quarantine_backend(
                ntt_engine.BACKEND_FOUR_STEP, reason="mid-flight drill"
            )

        try:
            threaded = _run_threaded(
                shared_setup, inputs, midflight=quarantine_fast_backend
            )
        finally:
            ntt_engine.clear_quarantine()
        for expected, got in zip(serial, threaded):
            for expected_part, got_part in zip(expected, _residues(got)):
                assert np.array_equal(expected_part, got_part)

    def test_decode_still_correct_after_threaded_run(self, shared_setup):
        (ciphertext, weights), = _make_inputs(shared_setup, 1)
        result = _run_threaded(
            shared_setup, [(ciphertext, weights)] * 1
        )[0]
        decoded = shared_setup["encoder"].decode(
            shared_setup["decryptor"].decrypt(result)
        ).real
        assert np.isfinite(decoded).all()


class TestBoundedLruCacheThreadSafety:
    def test_contended_mixed_operations(self):
        cache = BoundedLruCache(capacity=8, name="stress")
        built = [0]
        build_lock = threading.Lock()
        errors: list = []
        barrier = threading.Barrier(THREADS)

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                barrier.wait(timeout=10.0)
                for step in range(400):
                    key = int(rng.integers(0, 24))
                    op = step % 5
                    if op == 0:
                        def factory():
                            with build_lock:
                                built[0] += 1
                            return key * 2
                        assert cache.get_or_create(key, factory) == key * 2
                    elif op == 1:
                        cache.put(key, key * 2)
                    elif op == 2:
                        value = cache.get(key)
                        assert value is None or value == key * 2
                    elif op == 3:
                        cache.pop(key)
                    else:
                        for entry_key, value in cache.items():
                            assert value == entry_key * 2
                    assert len(cache) <= 8
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads), "cache op deadlocked"
        assert not errors, errors
        stats = cache.stats()
        assert stats["size"] <= 8
        assert built[0] >= 1

    def test_get_or_create_single_value_wins(self):
        """Racing builders may both run, but every thread adopts one entry."""
        cache = BoundedLruCache(capacity=4, name="race")
        seen = set()
        barrier = threading.Barrier(THREADS)
        seen_lock = threading.Lock()

        def worker(tag):
            barrier.wait(timeout=10.0)
            value = cache.get_or_create("k", lambda: object())
            with seen_lock:
                seen.add(id(value))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # all threads converged on the single cached object
        assert len(seen) == 1
        assert id(cache.get("k")) in seen

    def test_group_registration_race(self):
        group = WeakCacheGroup("stress-group")
        barrier = threading.Barrier(THREADS)
        errors: list = []
        keepalive = []

        def worker(index):
            try:
                barrier.wait(timeout=10.0)
                for n in range(50):
                    cache = BoundedLruCache(capacity=2, name=f"c{index}-{n}")
                    cache.put("x", 1)
                    keepalive.append(cache)
                    group.add(cache)
                    group.stats()  # concurrent registry walk
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        totals = group.stats()
        assert totals["instances"] == THREADS * 50
        assert totals["size"] == THREADS * 50  # one live entry per member
