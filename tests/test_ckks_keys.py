"""Tests for CKKS key generation and key-switching key structure."""

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator, digit_partition
from repro.ckks.params import CkksParameters


class TestDigitPartition:
    def test_exact_split(self):
        assert digit_partition(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split(self):
        assert digit_partition(5, 3) == [(0, 2), (2, 4), (4, 5)]

    def test_fewer_limbs_than_digits(self):
        assert digit_partition(2, 3) == [(0, 1), (1, 2)]

    def test_single_digit(self):
        assert digit_partition(4, 1) == [(0, 4)]


class TestParameters:
    def test_create_defaults(self, ckks_setup):
        params = ckks_setup["params"]
        assert params.slot_count == params.degree // 2
        assert params.special_limbs >= 1
        assert params.modulus_product > 0
        assert set(params.special_basis.moduli).isdisjoint(params.modulus_basis.moduli)

    def test_basis_at_level(self, ckks_setup):
        params = ckks_setup["params"]
        assert params.basis_at_level(2).size == 2
        with pytest.raises(ValueError):
            params.basis_at_level(0)
        with pytest.raises(ValueError):
            params.basis_at_level(params.limbs + 1)

    def test_extended_basis(self, ckks_setup):
        params = ckks_setup["params"]
        extended = params.extended_basis(params.limbs)
        assert extended.size == params.limbs + params.special_limbs

    def test_from_security_params(self):
        from repro.core.config import PARAMETER_SETS

        scaled = PARAMETER_SETS["A"].scaled(degree=32, limbs=2)
        params = CkksParameters.from_security_params(scaled)
        assert params.degree == 32
        assert params.limbs == 2


class TestSecretAndPublicKeys:
    def test_secret_is_ternary(self, ckks_setup):
        secret = ckks_setup["keygen"].secret_key
        assert set(np.unique(secret.coefficients)).issubset({-1, 0, 1})

    def test_public_key_is_encryption_of_zero(self, ckks_setup):
        params = ckks_setup["params"]
        keygen = ckks_setup["keygen"]
        pk = keygen.public_key()
        secret = keygen.secret_key.polynomial(params.modulus_basis)
        noise = pk.b.add(pk.a.multiply(secret).to_coeff())
        signed = np.array(noise.to_signed_coefficients(), dtype=np.float64)
        # b + a*s = e: the residual must be key-generation noise, not data.
        assert np.abs(signed).max() < 64

    def test_switching_key_levels(self, ckks_setup):
        params = ckks_setup["params"]
        relin = ckks_setup["evaluator"].relin_key
        assert set(relin.digits.keys()) == set(range(1, params.limbs + 1))
        for level, digit_keys in relin.digits.items():
            assert len(digit_keys) == len(digit_partition(level, params.dnum))
            for b_j, a_j in digit_keys:
                assert b_j.limb_count == level + params.special_limbs

    def test_galois_key_lookup(self, ckks_setup):
        keys = ckks_setup["evaluator"].galois_keys
        with pytest.raises(KeyError):
            keys.key_for(9999)

    def test_missing_level_raises(self, ckks_setup):
        relin = ckks_setup["evaluator"].relin_key
        with pytest.raises(KeyError):
            relin.digits_at_level(99)
