"""Process-isolated sharding tests: specs, framing, supervision, chaos.

The supervision tree's contract (ISSUE 10): worker processes are a fault
domain -- a SIGKILL, hang, or poison payload costs at most the victim
request (typed) while every other in-flight request completes bit-exact
against a solo-served oracle, and the dead shard restarts and passes
``ready()`` within the backoff budget.  A payload that kills workers twice
is quarantined as :class:`~repro.errors.PoisonRequest` without a third
crash.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.errors import (
    ParameterError,
    PoisonRequest,
    ReproError,
    ServingError,
    WorkerCrashed,
    WorkerUnresponsive,
)
from repro.poly import ntt_engine
from repro.serving import (
    InferenceRequest,
    InferenceServer,
    TenantRegistry,
    TenantSpec,
    backend_attributable,
    is_retryable,
)
from repro.serving.shard import FRAME_MAGIC, _FRAME_HEADER, recv_frame, send_frame
from repro.testing.chaos import (
    LinearSquareCircuit,
    build_tenants,
    prepare_work,
    run_process_chaos,
)


@pytest.fixture(autouse=True)
def _clean_dispatch():
    yield
    ntt_engine.clear_quarantine()
    ntt_engine.reset_sentinels()


# ---------------------------------------------------------------------------
# TenantSpec: picklable seed material, deterministic re-derivation
# ---------------------------------------------------------------------------


class TestTenantSpec:
    def test_spec_is_picklable(self):
        spec = TenantSpec("alice", degree=64, limbs=4, dnum=2, key_seed=5)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_keygen_is_deterministic(self):
        spec = TenantSpec(
            "alice", degree=64, limbs=4, log_q=28, dnum=2,
            scale_bits=20, key_seed=5,
        )
        first = spec.keygen()
        second = spec.keygen()
        np.testing.assert_array_equal(
            first.secret_key.coefficients, second.secret_key.coefficients
        )

    def test_build_keys_is_deterministic(self):
        # The worker re-derives relin/galois keys from the seed on every
        # (re)boot; key material depends on rng draw *order*, so two builds
        # must agree residue for residue.
        spec = TenantSpec(
            "bob", degree=64, limbs=4, log_q=28, dnum=2,
            scale_bits=20, key_seed=9, galois_steps=(1,),
        )
        params = spec.build_params()
        relin_a, galois_a = spec.build_keys(params)
        relin_b, galois_b = spec.build_keys(params)
        assert relin_a.digits.keys() == relin_b.digits.keys()
        for level, pairs_a in relin_a.digits.items():
            for (b_a, a_a), (b_b, a_b) in zip(pairs_a, relin_b.digits[level]):
                np.testing.assert_array_equal(b_a.residues, b_b.residues)
                np.testing.assert_array_equal(a_a.residues, a_b.residues)
        assert (galois_a is None) == (galois_b is None)

    def test_registry_register_spec_builds_session(self):
        registry = TenantRegistry()
        spec = TenantSpec("carol", degree=64, limbs=4, dnum=2, key_seed=3)
        registry.register_spec(spec)
        assert registry.session("carol").params.degree == 64
        assert registry.specs() == [spec]
        registry.remove("carol")
        assert registry.specs() == []

    def test_distinct_seeds_distinct_secrets(self):
        one = TenantSpec("t", degree=64, limbs=4, dnum=2, key_seed=1).keygen()
        two = TenantSpec("t", degree=64, limbs=4, dnum=2, key_seed=2).keygen()
        assert not np.array_equal(
            one.secret_key.coefficients, two.secret_key.coefficients
        )


# ---------------------------------------------------------------------------
# Length-prefixed framing over pipes
# ---------------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        parent, child = multiprocessing.Pipe()
        try:
            send_frame(parent, "request", {"request_id": "r1", "n": 7})
            kind, payload = recv_frame(child, timeout=2.0)
            assert kind == "request"
            assert payload == {"request_id": "r1", "n": 7}
        finally:
            parent.close()
            child.close()

    def test_timeout_returns_none(self):
        parent, child = multiprocessing.Pipe()
        try:
            assert recv_frame(child, timeout=0.05) is None
        finally:
            parent.close()
            child.close()

    def test_closed_pipe_raises_eof(self):
        parent, child = multiprocessing.Pipe()
        parent.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(child, timeout=1.0)
        finally:
            child.close()

    def test_bad_magic_rejected(self):
        parent, child = multiprocessing.Pipe()
        try:
            body = pickle.dumps(("request", {}))
            parent.send_bytes(_FRAME_HEADER.pack(b"XX", len(body)) + body)
            with pytest.raises(ReproError, match="magic"):
                recv_frame(child, timeout=2.0)
        finally:
            parent.close()
            child.close()

    def test_truncated_frame_rejected(self):
        parent, child = multiprocessing.Pipe()
        try:
            body = pickle.dumps(("request", {}))
            parent.send_bytes(
                _FRAME_HEADER.pack(FRAME_MAGIC, len(body) + 10) + body
            )
            with pytest.raises(ReproError, match="length mismatch"):
                recv_frame(child, timeout=2.0)
        finally:
            parent.close()
            child.close()


# ---------------------------------------------------------------------------
# Error taxonomy additions (satellite: retryability classifications)
# ---------------------------------------------------------------------------


class TestSupervisionErrors:
    def test_hierarchy(self):
        for cls in (WorkerCrashed, WorkerUnresponsive, PoisonRequest):
            assert issubclass(cls, ServingError)
            assert issubclass(cls, ReproError)
        assert issubclass(WorkerUnresponsive, TimeoutError)

    def test_retryability(self):
        # Crash/hang: the request may be innocent -- re-dispatch it.
        assert is_retryable(WorkerCrashed("shard died"))
        assert is_retryable(WorkerUnresponsive("heartbeats stopped"))
        # Two kills: the request is the fault -- quarantine, never retry.
        assert not is_retryable(PoisonRequest("killed two workers"))

    def test_worker_faults_never_blame_backends(self):
        # Retryable, yes -- but a worker death must not feed the circuit
        # breaker, or an innocent NTT backend gets quarantined.
        for error in (
            WorkerCrashed("x"),
            WorkerUnresponsive("x"),
            PoisonRequest("x"),
        ):
            assert not backend_attributable(error)


# ---------------------------------------------------------------------------
# Process-mode server lifecycle
# ---------------------------------------------------------------------------


class TestProcessServer:
    def test_invalid_mode_rejected(self):
        registry = TenantRegistry()
        with pytest.raises(ParameterError, match="workers_mode"):
            InferenceServer(registry, workers=2, workers_mode="fibers")

    def test_process_mode_requires_specs(self):
        registry = TenantRegistry()
        clients = build_tenants(registry, ("alice",))
        # A tenant registered without a spec cannot be rebuilt in a worker.
        session = registry.session("alice")
        registry._specs.pop("alice")
        assert session is not None
        server = InferenceServer(registry, workers=2, workers_mode="process")
        with pytest.raises(ParameterError, match="alice"):
            server.start()

    def test_serves_bit_exact_and_reports_shards(self):
        registry = TenantRegistry()
        clients = build_tenants(registry, ("alice", "bob"))
        rng = np.random.default_rng(3)
        work = prepare_work(clients, requests=4, rng=rng)
        oracles = {
            index: LinearSquareCircuit(client.weights, client.bias)(
                registry.session(client.tenant_id), ciphertext
            )
            for index, client, _, ciphertext in work
        }
        with InferenceServer(
            registry,
            workers=2,
            workers_mode="process",
            default_timeout_s=60.0,
            supervisor_options={"heartbeat_interval_s": 0.1},
        ) as server:
            assert server.ready()
            health = server.health()
            assert health["workers_mode"] == "process"
            shard_stats = health["shards"]["shards"]
            assert len(shard_stats) == 2
            for stats in shard_stats.values():
                assert stats["state"] in {"ready", "busy"}
                assert stats["pid"] is not None

            tickets = [
                (
                    index,
                    server.submit(
                        InferenceRequest(
                            client.tenant_id,
                            LinearSquareCircuit(client.weights, client.bias),
                            payload=ciphertext,
                        )
                    ),
                )
                for index, client, _, ciphertext in work
            ]
            for index, ticket in tickets:
                result = ticket.result(timeout=60.0)
                oracle = oracles[index]
                np.testing.assert_array_equal(
                    result.c0.residues, oracle.c0.residues
                )
                np.testing.assert_array_equal(
                    result.c1.residues, oracle.c1.residues
                )
                # Worker-side metadata rode back with the reply.
                assert ticket.diagnostics["shard"].startswith("shard-")
                assert ticket.diagnostics["shard_pid"] is not None
        # Shutdown tore the supervisor down.
        assert server.supervisor is None or not server.supervisor.ready()


# ---------------------------------------------------------------------------
# Crash containment drills (SIGKILL + poison; the full storm runs in the
# bench gate and the supervision CI job via run_process_chaos defaults)
# ---------------------------------------------------------------------------


class TestProcessChaos:
    def test_sigkill_and_poison_contract(self):
        report = run_process_chaos(
            requests_per_drill=4,
            shards=4,
            seed=11,
            drills=["proc_sigkill_mid_request", "proc_poison_deserialize"],
        )
        assert report.silent == 0, report.summary()
        assert report.hung == 0, report.summary()
        assert report.seed == 11
        by_drill = {o.drill: o for o in report.outcomes}

        # SIGKILL mid-request: the victim was re-dispatched and completed
        # (or failed typed); every completion is bit-exact vs solo; the
        # killed shard restarted and passed ready() within the budget.
        sigkill = by_drill["proc_sigkill_mid_request"]
        assert sigkill.details["kills"] >= 1
        assert sigkill.details["recovered"]
        assert sigkill.correct + sigkill.typed_failures == sigkill.requests
        assert sigkill.details["bit_exact"] == sigkill.correct

        # Poison payload: detonates in the worker's deserialiser, kills the
        # shard twice, then quarantines -- typed PoisonRequest, no third
        # crash, all other requests bit-exact.
        poison = by_drill["proc_poison_deserialize"]
        assert poison.details["crash_kills"] == 2
        assert poison.details["poisoned"] == 1
        assert poison.typed_failures == 1
        assert any("PoisonRequest" in error for error in poison.errors)
        assert poison.correct == poison.requests - 1
        assert poison.details["bit_exact"] == poison.correct
        assert poison.details["recovered"]
