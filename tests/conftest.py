"""Shared fixtures: small-but-real parameter sets for exact-arithmetic tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksEvaluator,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.numtheory.crt import RnsBasis
from repro.numtheory.primes import generate_ntt_prime
from repro.poly.ring import PolyRing

TEST_DEGREE = 64
TEST_LOG_Q = 28


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the whole suite."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def prime() -> int:
    """A 28-bit NTT-friendly prime for the default test degree."""
    return generate_ntt_prime(TEST_LOG_Q, TEST_DEGREE)


@pytest.fixture(scope="session")
def ring(prime: int) -> PolyRing:
    """A degree-64 negacyclic ring."""
    return PolyRing(degree=TEST_DEGREE, modulus=prime)


@pytest.fixture(scope="session")
def rns_basis() -> RnsBasis:
    """A 4-limb RNS basis at the test degree."""
    return RnsBasis.generate(4, TEST_LOG_Q, TEST_DEGREE)


@pytest.fixture(scope="session")
def ckks_setup():
    """A complete small CKKS instance: params, keys, encoder, evaluator."""
    params = CkksParameters.create(degree=TEST_DEGREE, limbs=3, log_q=28, dnum=2, scale_bits=21)
    keygen = KeyGenerator(params, rng=np.random.default_rng(7))
    public_key = keygen.public_key()
    relin_key = keygen.relinearization_key()
    rotation_exponents = [pow(5, 1, 2 * params.degree), pow(5, 2, 2 * params.degree),
                          2 * params.degree - 1]
    galois_keys = keygen.galois_keys(rotation_exponents)
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key, keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    evaluator = CkksEvaluator(params, relin_key=relin_key, galois_keys=galois_keys)
    return {
        "params": params,
        "keygen": keygen,
        "encoder": encoder,
        "encryptor": encryptor,
        "decryptor": decryptor,
        "evaluator": evaluator,
    }
