"""Tests for the unified BSGS homomorphic linear-transform engine.

Covers the tentpole claims:

* ``DiagonalLinearTransform.apply`` matches the NumPy matrix-vector product
  on random dense/sparse matrices, BSGS splits and levels;
* the baby-only split is bit-exact against the hand-rolled hoisted
  rotate/multiply/add loop it replaced (eval-domain accumulation is a pure
  dataflow change);
* ``switch_galois_eval`` (the giant-step primitive) is bit-exact against the
  coefficient-domain rotate path;
* the rotation-step bookkeeping generates exactly the Galois keys needed;
* the encoder's vectorized coefficient reduction and plaintext memoisation
  are transparent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoding import (
    CkksEncoder,
    matrix_diagonals,
    matrix_from_diagonals,
    rotate_slots,
    slot_bit_reversal,
)
from repro.ckks.encryptor import Decryptor, Encryptor
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.keyswitch import switch_galois_eval
from repro.ckks.linear_transform import (
    DiagonalLinearTransform,
    bsgs_rotation_counts,
    required_rotation_steps,
)
from repro.ckks.params import CkksParameters
from repro.poly.rns_poly import EVAL_DOMAIN, RnsPolynomial


@pytest.fixture(scope="module")
def env():
    """A small CKKS instance with Galois keys for every slot rotation."""
    params = CkksParameters.create(
        degree=64, limbs=4, log_q=28, dnum=2, scale_bits=22, special_limbs=3
    )
    keygen = KeyGenerator(params, rng=np.random.default_rng(42))
    encoder = CkksEncoder(params)
    evaluator = CkksEvaluator(
        params,
        relin_key=keygen.relinearization_key(),
        galois_keys=keygen.galois_keys_for_steps(
            range(1, params.slot_count), conjugation=True
        ),
    )
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    rng = np.random.default_rng(7)
    z = rng.uniform(-1, 1, params.slot_count) + 1j * rng.uniform(
        -1, 1, params.slot_count
    )
    ciphertext = encryptor.encrypt(encoder.encode(z))
    return {
        "params": params,
        "keygen": keygen,
        "encoder": encoder,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
        "rng": rng,
        "z": z,
        "ct": ciphertext,
    }


def decode(env, ciphertext):
    return env["encoder"].decode(env["decryptor"].decrypt(ciphertext))


def random_matrix(rng, size, density=1.0):
    matrix = rng.uniform(-1, 1, (size, size)) + 1j * rng.uniform(-1, 1, (size, size))
    if density < 1.0:
        matrix *= rng.random((size, size)) < density
    return matrix / size  # keep outputs O(1)


class TestSlotUtilities:
    def test_rotate_slots_matches_homomorphic_rotate(self, env):
        rotated = env["evaluator"].rotate(env["ct"], 2)
        expected = rotate_slots(env["z"], 2)
        assert np.abs(decode(env, rotated) - expected).max() < 1e-2

    def test_matrix_diagonals_roundtrip(self, env):
        rng = env["rng"]
        size = env["params"].slot_count
        matrix = random_matrix(rng, size, density=0.3)
        diagonals = matrix_diagonals(matrix)
        assert np.allclose(matrix_from_diagonals(diagonals, size), matrix)

    def test_matrix_diagonals_drops_zero_diagonals(self):
        matrix = np.zeros((8, 8))
        matrix[0, 3] = 1.0  # only diagonal k=3 is populated
        diagonals = matrix_diagonals(matrix)
        assert set(diagonals) == {3}

    def test_matrix_diagonals_identity(self):
        diagonals = matrix_diagonals(np.eye(8))
        assert set(diagonals) == {0}
        assert np.allclose(diagonals[0], 1.0)

    def test_matrix_diagonals_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((4, 8)))

    def test_slot_bit_reversal_is_permutation(self):
        perm = slot_bit_reversal(32)
        assert sorted(perm.tolist()) == list(range(32))
        assert perm[1] == 16


class TestConstruction:
    def test_from_matrix_reconstructs_matrix(self, env):
        matrix = random_matrix(env["rng"], env["params"].slot_count)
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        assert np.allclose(transform.matrix(), matrix)

    def test_diagonal_indices_normalised(self, env):
        slots = env["params"].slot_count
        vec = np.ones(slots)
        transform = DiagonalLinearTransform.from_diagonals(
            env["encoder"], {-1: vec}
        )
        assert set(transform.diagonals) == {slots - 1}

    def test_rejects_empty(self, env):
        with pytest.raises(ValueError):
            DiagonalLinearTransform.from_diagonals(env["encoder"], {})
        with pytest.raises(ValueError):
            DiagonalLinearTransform.from_diagonals(
                env["encoder"], {0: np.zeros(env["params"].slot_count)}
            )

    def test_rejects_wrong_length(self, env):
        with pytest.raises(ValueError):
            DiagonalLinearTransform.from_diagonals(env["encoder"], {0: np.ones(3)})

    def test_rejects_duplicate_indices(self, env):
        slots = env["params"].slot_count
        with pytest.raises(ValueError):
            DiagonalLinearTransform.from_diagonals(
                env["encoder"], {1: np.ones(slots), 1 + slots: np.ones(slots)}
            )

    def test_bsgs_split_covers_all_diagonals(self, env):
        slots = env["params"].slot_count
        transform = DiagonalLinearTransform.from_matrix(
            env["encoder"], random_matrix(env["rng"], slots)
        )
        reconstructed = set()
        for g, babies in transform._groups.items():
            for b in babies:
                reconstructed.add(g * transform.n1 + b)
        assert reconstructed == set(transform.diagonals)

    def test_dense_split_near_square_root(self, env):
        slots = env["params"].slot_count
        n1, babies, giants = bsgs_rotation_counts(range(slots), slots)
        assert babies + giants <= 2 * int(np.ceil(np.sqrt(slots)))
        assert n1 * (slots // n1) <= slots

    def test_bsgs_rotation_counts_match_transform(self, env):
        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots, density=0.2)
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        _, babies, giants = bsgs_rotation_counts(
            transform.diagonals, slots, transform.n1
        )
        assert transform.rotation_count() == babies + giants


class TestApply:
    @pytest.mark.parametrize("density", [1.0, 0.25, 0.05])
    def test_matches_numpy_matvec(self, env, density):
        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots, density=density)
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        result = env["evaluator"].matvec(env["ct"], transform, rescale=True)
        expected = matrix @ env["z"]
        assert np.abs(decode(env, result) - expected).max() < 5e-2
        assert np.abs(transform.apply_plain(env["z"]) - expected).max() < 1e-9

    @pytest.mark.parametrize("n1", [1, 2, 8, 32])
    def test_every_bsgs_split_agrees(self, env, n1):
        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots, density=0.3)
        transform = DiagonalLinearTransform.from_matrix(
            env["encoder"], matrix, n1=n1
        )
        result = env["evaluator"].matvec(env["ct"], transform, rescale=True)
        assert np.abs(decode(env, result) - matrix @ env["z"]).max() < 5e-2

    def test_apply_at_lower_level(self, env):
        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots)
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        lowered = env["evaluator"].level_down(env["ct"])
        result = env["evaluator"].matvec(lowered, transform, rescale=True)
        assert result.level == lowered.level - 1
        assert np.abs(decode(env, result) - matrix @ env["z"]).max() < 5e-2

    def test_single_diagonal_is_plain_multiply(self, env):
        slots = env["params"].slot_count
        weights = env["rng"].uniform(-1, 1, slots)
        transform = DiagonalLinearTransform.from_diagonals(
            env["encoder"], {0: weights}
        )
        assert transform.rotation_count() == 0
        result = env["evaluator"].matvec(env["ct"], transform, rescale=True)
        assert np.abs(decode(env, result) - weights * env["z"]).max() < 5e-2

    def test_permutation_matrix_rotation(self, env):
        """A pure rotation matrix reduces to one diagonal of ones."""
        slots = env["params"].slot_count
        rows = np.arange(slots)
        matrix = np.zeros((slots, slots))
        matrix[rows, (rows + 3) % slots] = 1.0
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        assert set(transform.diagonals) == {3}
        result = env["evaluator"].matvec(env["ct"], transform, rescale=True)
        assert np.abs(decode(env, result) - rotate_slots(env["z"], 3)).max() < 5e-2

    def test_scale_bookkeeping(self, env):
        slots = env["params"].slot_count
        transform = DiagonalLinearTransform.from_matrix(
            env["encoder"], random_matrix(env["rng"], slots)
        )
        unrescaled = transform.apply(env["evaluator"], env["ct"])
        assert unrescaled.scale == pytest.approx(
            env["ct"].scale * env["params"].scale
        )
        assert unrescaled.level == env["ct"].level

    def test_plaintext_cache_reused_across_applies(self, env):
        slots = env["params"].slot_count
        transform = DiagonalLinearTransform.from_matrix(
            env["encoder"], random_matrix(env["rng"], slots, density=0.2)
        )
        first = transform.apply(env["evaluator"], env["ct"])
        cache = transform._plain_cache[env["ct"].level]
        second = transform.apply(env["evaluator"], env["ct"])
        assert transform._plain_cache[env["ct"].level] is cache
        assert np.array_equal(first.c0.residues, second.c0.residues)

    def test_slot_count_mismatch_rejected(self, env):
        other = CkksParameters.create(degree=32, limbs=2, log_q=28, dnum=2)
        transform = DiagonalLinearTransform.from_diagonals(
            CkksEncoder(other), {0: np.ones(other.slot_count)}
        )
        with pytest.raises(ValueError):
            transform.apply(env["evaluator"], env["ct"])


class TestBitExactness:
    def legacy_loop(self, env, ciphertext, diagonals):
        """The pre-engine hoisted rotate/multiply/add loop (scale Delta)."""
        evaluator, encoder = env["evaluator"], env["encoder"]
        hoisted = evaluator.hoist(ciphertext)
        accumulator = None
        for steps, weights in diagonals.items():
            rotated = (
                ciphertext
                if steps == 0
                else evaluator.rotate_hoisted(hoisted, steps)
            )
            plain = encoder.encode(weights, level=rotated.level)
            term = evaluator.multiply_plain(rotated, plain)
            accumulator = (
                term if accumulator is None else evaluator.add(accumulator, term)
            )
        return accumulator

    def test_baby_only_split_matches_legacy_loop(self, env):
        """Eval-domain accumulation is bit-exact vs per-term inverse NTTs."""
        slots = env["params"].slot_count
        rng = env["rng"]
        diagonals = {s: rng.uniform(-1, 1, slots) for s in (0, 1, 5, 9)}
        transform = DiagonalLinearTransform.from_diagonals(
            env["encoder"], diagonals, n1=slots
        )
        assert transform.giant_steps == []
        engine = transform.apply(env["evaluator"], env["ct"])
        legacy = self.legacy_loop(env, env["ct"], diagonals)
        assert np.array_equal(engine.c0.residues, legacy.c0.residues)
        assert np.array_equal(engine.c1.residues, legacy.c1.residues)
        assert engine.scale == legacy.scale

    def test_switch_galois_eval_matches_coeff_rotate(self, env):
        """The giant-step primitive == gather-after-inverse rotate path."""
        params, evaluator = env["params"], env["evaluator"]
        ct = env["ct"]
        steps = 4
        exponent = env["encoder"].slot_rotation_exponent(steps)
        key = evaluator.galois_keys.key_for(exponent)
        c0_eval = ct.c0.to_eval().residues
        c1_eval = ct.c1.to_eval().residues
        c0, c1 = switch_galois_eval(
            c0_eval, c1_eval, key, exponent, params, ct.level
        )
        expected = evaluator.apply_galois(ct, exponent)
        assert np.array_equal(c0.residues, expected.c0.residues)
        assert np.array_equal(c1.residues, expected.c1.residues)


class TestRotationKeyHelper:
    def test_exact_key_set_suffices(self, env):
        """An evaluator with only the helper's keys can run the transform."""
        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots, density=0.15)
        transform = DiagonalLinearTransform.from_matrix(env["encoder"], matrix)
        keys = env["keygen"].galois_keys_for_steps(
            required_rotation_steps(transform)
        )
        minimal = CkksEvaluator(env["params"], galois_keys=keys)
        result = minimal.matvec(env["ct"], transform, rescale=True)
        assert np.abs(decode(env, result) - matrix @ env["z"]).max() < 5e-2

    def test_key_set_is_exact(self, env):
        transform = DiagonalLinearTransform.from_diagonals(
            env["encoder"],
            {k: np.ones(env["params"].slot_count) for k in (0, 1, 9)},
            n1=4,
        )
        keys = env["keygen"].galois_keys_for_steps(
            required_rotation_steps(transform)
        )
        degree = env["params"].degree
        expected = {
            pow(5, s, 2 * degree) for s in transform.rotation_steps()
        }
        assert set(keys.keys) == expected

    def test_zero_step_skipped(self, env):
        keys = env["keygen"].galois_keys_for_steps([0])
        assert keys.keys == {}

    def test_conjugation_included_on_request(self, env):
        degree = env["params"].degree
        keys = env["keygen"].galois_keys_for_steps([1], conjugation=True)
        assert set(keys.keys) == {5 % (2 * degree), 2 * degree - 1}

    def test_required_rotation_steps_unions(self, env):
        slots = env["params"].slot_count
        first = DiagonalLinearTransform.from_diagonals(
            env["encoder"], {1: np.ones(slots)}, n1=slots
        )
        second = DiagonalLinearTransform.from_diagonals(
            env["encoder"], {2: np.ones(slots)}, n1=slots
        )
        assert required_rotation_steps(first, second) == [1, 2]


class TestRotateMany:
    def test_matches_sequential_rotations(self, env):
        evaluator = env["evaluator"]
        batch = evaluator.rotate_many(env["ct"], [0, 1, 5])
        assert batch[0] is env["ct"]
        for steps, rotated in zip([0, 1, 5], batch):
            expected = rotate_slots(env["z"], steps)
            assert np.abs(decode(env, rotated) - expected).max() < 1e-2

    def test_duplicates_reuse_rotation(self, env):
        batch = env["evaluator"].rotate_many(env["ct"], [3, 3])
        assert batch[0] is batch[1]

    def test_empty_batch_rejected(self, env):
        with pytest.raises(ValueError):
            env["evaluator"].rotate_many(env["ct"], [])


class TestEncoderFastPaths:
    def test_vectorized_reduction_matches_bigint_path(self, env):
        """int64 np.mod reduction == the per-coefficient ``int(c) % Q`` loop."""
        params, encoder = env["params"], env["encoder"]
        rng = env["rng"]
        values = rng.uniform(-3, 3, params.slot_count) + 1j * rng.uniform(
            -3, 3, params.slot_count
        )
        plain = encoder.encode(values)
        vector = np.zeros(params.slot_count, dtype=np.complex128)
        vector[: values.size] = values
        full = np.concatenate([vector, np.conj(vector)])
        coeffs = np.conj(encoder._embedding.T) @ full / params.degree
        scaled = np.round(np.real(coeffs) * params.scale).astype(object)
        basis = params.basis_at_level(params.limbs)
        expected = RnsPolynomial.from_int_coefficients(
            [int(c) % basis.modulus_product for c in scaled], basis
        )
        assert np.array_equal(plain.poly.residues, expected.residues)

    def test_encode_memoised_on_request(self, env):
        encoder = env["encoder"]
        values = np.arange(env["params"].slot_count, dtype=np.float64)
        first = encoder.encode(values, level=2, cache=True)
        second = encoder.encode(values, level=2, cache=True)
        assert first.poly is second.poly  # cache hit shares the polynomial
        third = encoder.encode(values, level=3, cache=True)
        assert third.poly is not first.poly  # level is part of the key

    def test_data_encodings_not_retained(self, env):
        """One-off data encodes stay out of the parameter cache."""
        encoder = env["encoder"]
        values = np.full(env["params"].slot_count, 0.125)
        before = len(encoder._encode_cache)
        first = encoder.encode(values)
        second = encoder.encode(values)
        assert first.poly is not second.poly
        assert len(encoder._encode_cache) == before
        assert np.array_equal(first.poly.residues, second.poly.residues)

    def test_cached_polynomial_is_read_only(self, env):
        values = np.ones(env["params"].slot_count)
        plain = env["encoder"].encode(values, cache=True)
        with pytest.raises(ValueError):
            plain.poly.residues[0, 0] = 1

    def test_memoised_encode_roundtrips(self, env):
        values = env["rng"].uniform(-1, 1, env["params"].slot_count)
        env["encoder"].encode(values, cache=True)  # populate cache
        decoded = env["encoder"].decode(env["encoder"].encode(values, cache=True))
        assert np.abs(decoded.real - values).max() < 1e-4


class TestWorkloadsOnEngine:
    def test_conv_taps_bit_exact_vs_legacy(self, env):
        from repro.workloads import run_encrypted_conv_taps

        slots = env["params"].slot_count
        rng = env["rng"]
        taps = [(s, rng.uniform(-1, 1, slots)) for s in (0, 1, 7)]
        engine = run_encrypted_conv_taps(
            env["evaluator"], env["encoder"], env["ct"], taps
        )
        legacy = env["evaluator"].rescale(
            TestBitExactness().legacy_loop(env, env["ct"], dict(taps))
        )
        assert np.array_equal(engine.c0.residues, legacy.c0.residues)
        assert np.array_equal(engine.c1.residues, legacy.c1.residues)
        expected = sum(w * rotate_slots(env["z"], s) for s, w in taps)
        assert np.abs(decode(env, engine) - expected).max() < 5e-2

    def test_conv_taps_transform_exposes_steps(self, env):
        from repro.workloads import conv_taps_transform

        slots = env["params"].slot_count
        transform = conv_taps_transform(
            env["encoder"], [(0, np.ones(slots)), (2, np.ones(slots))]
        )
        assert transform.giant_steps == []
        assert transform.rotation_steps() == [2]

    def test_conv_taps_duplicate_offsets_sum(self, env):
        """Taps sharing an offset accumulate, as the legacy loop did."""
        from repro.workloads import conv_taps_transform

        slots = env["params"].slot_count
        rng = env["rng"]
        w1, w2 = rng.uniform(-1, 1, slots), rng.uniform(-1, 1, slots)
        transform = conv_taps_transform(env["encoder"], [(1, w1), (1, w2)])
        assert np.allclose(transform.diagonals[1], w1 + w2)
        # Offsets congruent mod the slot count are the same rotation.
        wrapped = conv_taps_transform(env["encoder"], [(-1, w1), (slots - 1, w2)])
        assert set(wrapped.diagonals) == {slots - 1}
        assert np.allclose(wrapped.diagonals[slots - 1], w1 + w2)

    def test_conv_taps_all_zero_weights(self, env):
        """An all-zero tap batch still evaluates (to an encrypted zero)."""
        from repro.workloads import run_encrypted_conv_taps

        slots = env["params"].slot_count
        result = run_encrypted_conv_taps(
            env["evaluator"], env["encoder"], env["ct"], [(1, np.zeros(slots))]
        )
        assert np.abs(decode(env, result)).max() < 1e-2

    def test_conv_taps_transform_memoised(self, env):
        from repro.workloads import conv_taps_transform

        slots = env["params"].slot_count
        taps = [(0, np.ones(slots)), (3, np.full(slots, 0.5))]
        first = conv_taps_transform(env["encoder"], taps)
        second = conv_taps_transform(env["encoder"], list(taps))
        assert second is first  # same kernel -> cached transform (and NTTs)
        other = conv_taps_transform(env["encoder"], [(0, np.ones(slots))])
        assert other is not first

    def test_hoisted_rotation_sum_bit_exact_vs_legacy(self, env):
        from repro.workloads import hoisted_rotation_sum

        evaluator, ct = env["evaluator"], env["ct"]
        offsets = [0, 1, 5]
        hoisted = evaluator.hoist(ct)
        legacy = None
        for steps in offsets:
            term = ct if steps == 0 else evaluator.rotate_hoisted(hoisted, steps)
            legacy = term if legacy is None else evaluator.add(legacy, term)
        engine = hoisted_rotation_sum(evaluator, ct, offsets)
        assert np.array_equal(engine.c0.residues, legacy.c0.residues)
        assert np.array_equal(engine.c1.residues, legacy.c1.residues)

    def test_encrypted_matvec(self, env):
        from repro.workloads import encrypted_matvec

        slots = env["params"].slot_count
        matrix = random_matrix(env["rng"], slots, density=0.4)
        result = encrypted_matvec(
            env["evaluator"], env["encoder"], env["ct"], matrix
        )
        assert np.abs(decode(env, result) - matrix @ env["z"]).max() < 5e-2
