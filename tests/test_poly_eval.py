"""Tests for homomorphic polynomial evaluation (Chebyshev + PS + EvalMod).

Three layers: exact algebra (the Paterson-Stockmeyer restructuring is
bit-exact vs Clenshaw/Horner over ``fractions.Fraction``), series fitting
(NumPy ``chebval`` is the reference everywhere), and the homomorphic
evaluators on the real CKKS stack -- including the operation-counter
consistency the schedule model relies on.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import (
    CkksEncoder,
    CkksEvaluator,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.ckks.poly_eval import (
    COEFFICIENT_TOLERANCE,
    ChebyshevPowerBasis,
    ChebyshevSeries,
    EvalModPoly,
    chebyshev_divmod,
    chebyshev_to_power,
    clenshaw,
    eval_mod,
    evaluate_chebyshev,
    evaluate_chebyshev_horner,
    horner,
    ps_evaluate_plain,
    ps_operation_counts,
)

# ---------------------------------------------------------------------------
# Exact algebra (no ciphertexts)
# ---------------------------------------------------------------------------

rational_coefficients = st.lists(
    st.integers(min_value=-999, max_value=999).map(lambda n: Fraction(n, 64)),
    min_size=2,
    max_size=48,
)


class TestChebyshevAlgebra:
    @given(coefficients=rational_coefficients, n=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_divmod_identity_exact(self, coefficients, n):
        """``f = q * T_n + r`` holds exactly over the rationals."""
        quotient, remainder = chebyshev_divmod(coefficients, n)
        assert len(remainder) == min(n, len(coefficients))
        t = Fraction(7, 19)
        t_n = clenshaw([Fraction(0)] * n + [Fraction(1)], t)
        lhs = clenshaw(coefficients, t)
        rhs = clenshaw(quotient, t) * t_n + clenshaw(remainder, t)
        assert lhs == rhs

    @given(
        coefficients=rational_coefficients,
        baby_count=st.sampled_from([2, 4, 8]),
        numerator=st.integers(-37, 37),
    )
    @settings(max_examples=60, deadline=None)
    def test_ps_bit_exact_vs_clenshaw(self, coefficients, baby_count, numerator):
        """The PS restructuring is algebraically lossless: `==`, not approx."""
        t = Fraction(numerator, 41)
        assert ps_evaluate_plain(coefficients, t, baby_count=baby_count) == clenshaw(
            coefficients, t
        )

    @given(coefficients=rational_coefficients, numerator=st.integers(-29, 29))
    @settings(max_examples=40, deadline=None)
    def test_power_basis_horner_bit_exact(self, coefficients, numerator):
        """Chebyshev -> power conversion + Horner agrees exactly too."""
        t = Fraction(numerator, 31)
        power = chebyshev_to_power(coefficients)
        assert horner(power, t) == clenshaw(coefficients, t)

    def test_divmod_short_dividend(self):
        quotient, remainder = chebyshev_divmod([1.0, 2.0], 4)
        assert quotient == [0.0]
        assert remainder == [1.0, 2.0]

    def test_divmod_rejects_degree_zero_divisor(self):
        with pytest.raises(ValueError):
            chebyshev_divmod([1.0, 2.0, 3.0], 0)

    def test_clenshaw_matches_numpy(self):
        rng = np.random.default_rng(3)
        coefficients = rng.normal(size=24)
        t = 0.37
        assert clenshaw(list(coefficients), t) == pytest.approx(
            np.polynomial.chebyshev.chebval(t, coefficients), rel=1e-12
        )


class TestPsPlan:
    @pytest.mark.parametrize("degree", [3, 7, 15, 31, 63, 127])
    def test_mult_count_near_two_sqrt_d(self, degree):
        plan = ps_operation_counts(degree)
        assert plan["he_mult"] <= 2 * np.sqrt(degree) + 4
        assert plan["he_mult"] >= np.sqrt(degree) - 1

    def test_explicit_baby_count_respected(self):
        plan = ps_operation_counts(31, baby_count=4)
        assert plan["baby_count"] == 4

    def test_search_beats_or_ties_fixed_splits(self):
        best = ps_operation_counts(63)
        for m in (2, 4, 8, 16, 32):
            assert best["he_mult"] <= ps_operation_counts(63, baby_count=m)["he_mult"]


class TestChebyshevSeries:
    def test_fit_reproduces_smooth_function(self):
        series = ChebyshevSeries.fit(np.sin, 23, (-3.0, 3.0))
        x = np.linspace(-3, 3, 257)
        assert np.abs(series(x) - np.sin(x)).max() < 1e-10

    def test_fit_is_exact_on_polynomials(self):
        series = ChebyshevSeries.fit(lambda x: 2 * x**3 - x + 0.5, 5, (-2.0, 2.0))
        truncated = series.truncated()
        assert truncated.degree == 3
        x = np.linspace(-2, 2, 33)
        assert np.abs(series(x) - (2 * x**3 - x + 0.5)).max() < 1e-12

    def test_fit_intervals_concentrates_accuracy(self):
        intervals = [(-2.1, -1.9), (-0.1, 0.1), (1.9, 2.1)]
        series = ChebyshevSeries.fit_intervals(
            lambda x: np.sin(np.pi * x), 21, (-2.5, 2.5), intervals
        )
        for lo, hi in intervals:
            x = np.linspace(lo, hi, 65)
            assert np.abs(series(x) - np.sin(np.pi * x)).max() < 1e-8

    def test_fit_intervals_validates_bounds(self):
        with pytest.raises(ValueError):
            ChebyshevSeries.fit_intervals(np.sin, 7, (-1.0, 1.0), [(0.5, 1.5)])

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ChebyshevSeries(np.array([1.0]), (1.0, 1.0))

    def test_truncated_keeps_leading(self):
        series = ChebyshevSeries(np.array([1.0, 0.5, 1e-16, 1e-17]), (-1, 1))
        assert series.truncated().degree == 1


# ---------------------------------------------------------------------------
# Homomorphic evaluation on the real CKKS stack
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def he_env():
    """A deep functional rig: 20 x 29-bit limbs at degree 64, scale = q.

    ``scale_bits = log_q`` keeps the scale stationary through deep rescale
    chains -- the regime polynomial evaluation (and bootstrapping) runs in.
    """
    params = CkksParameters.create(
        degree=64, limbs=20, log_q=29, dnum=10, scale_bits=29, special_limbs=3
    )
    params.error_stddev = 1.0
    keygen = KeyGenerator(params, rng=np.random.default_rng(17))
    encoder = CkksEncoder(params)
    evaluator = CkksEvaluator(params, relin_key=keygen.relinearization_key())
    encryptor = Encryptor(params, keygen.public_key(), keygen)
    decryptor = Decryptor(params, keygen.secret_key)
    return {
        "params": params,
        "encoder": encoder,
        "evaluator": evaluator,
        "encryptor": encryptor,
        "decryptor": decryptor,
    }


def _encrypt(env, values, level=None):
    return env["encryptor"].encrypt(env["encoder"].encode(values, level=level))


def _decode(env, ciphertext):
    return env["encoder"].decode(env["decryptor"].decrypt(ciphertext))


#: Scale-derived tolerance: the rig's Delta = 2^29 puts the noise floor per
#: operation around 2^-29 * sqrt(ops); tens of operations on O(1) values stay
#: far below 1e-4 absolute.
HE_TOLERANCE = 1e-4


class TestHomomorphicChebyshev:
    def test_ps_matches_chebval_degree_15(self, he_env):
        env = he_env
        series = ChebyshevSeries.fit(np.sin, 15, (-3.0, 3.0))
        rng = np.random.default_rng(5)
        x = rng.uniform(-2.5, 2.5, env["params"].slot_count)
        result = evaluate_chebyshev(env["evaluator"], series, _encrypt(env, x))
        assert np.abs(_decode(env, result) - series(x)).max() < HE_TOLERANCE

    def test_ps_matches_chebval_degree_63(self, he_env):
        """The benchmark shape: degree 63, ~16 non-scalar multiplications."""
        env = he_env
        rng = np.random.default_rng(7)
        coefficients = rng.normal(size=64) / np.arange(1, 65)
        series = ChebyshevSeries(coefficients, (-1.0, 1.0))
        x = rng.uniform(-1, 1, env["params"].slot_count)
        env["evaluator"].reset_operation_counts()
        result = evaluate_chebyshev(env["evaluator"], series, _encrypt(env, x))
        measured = env["evaluator"].operation_counts["he_mult"]
        assert measured == ps_operation_counts(series.truncated().degree)["he_mult"]
        assert np.abs(_decode(env, result) - series(x)).max() < HE_TOLERANCE

    def test_ps_and_horner_agree(self, he_env):
        """Homomorphic PS vs the Clenshaw oracle on the same ciphertext."""
        env = he_env
        series = ChebyshevSeries.fit(lambda x: 1.0 / (1.0 + x**2), 11, (-2.0, 2.0))
        rng = np.random.default_rng(9)
        x = rng.uniform(-1.8, 1.8, env["params"].slot_count)
        ct = _encrypt(env, x)
        ps = evaluate_chebyshev(env["evaluator"], series, ct)
        naive = evaluate_chebyshev_horner(env["evaluator"], series, ct)
        assert np.abs(_decode(env, ps) - _decode(env, naive)).max() < HE_TOLERANCE

    def test_horner_counts_match_degree(self, he_env):
        env = he_env
        series = ChebyshevSeries.fit(np.exp, 9, (-1.0, 1.0))
        rng = np.random.default_rng(11)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        env["evaluator"].reset_operation_counts()
        evaluate_chebyshev_horner(env["evaluator"], series, _encrypt(env, x))
        # Clenshaw: one ciphertext multiplication per step, b_{d-1} is scalar.
        effective = series.truncated().degree
        assert env["evaluator"].operation_counts["he_mult"] == effective - 1

    def test_sparse_series_with_constant_remainder(self, he_env):
        """Regression: ``1 + T_4`` leaves a constant-only divmod remainder."""
        env = he_env
        rng = np.random.default_rng(33)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        series = ChebyshevSeries(np.array([1.0, 0.0, 0.0, 0.0, 1.0]), (-1.0, 1.0))
        for baby_count in (None, 2, 4):
            result = evaluate_chebyshev(
                env["evaluator"], series, _encrypt(env, x), baby_count=baby_count
            )
            assert np.abs(_decode(env, result) - series(x)).max() < HE_TOLERANCE

    def test_degree_one_and_zero(self, he_env):
        env = he_env
        rng = np.random.default_rng(13)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        ct = _encrypt(env, x)
        linear = ChebyshevSeries(np.array([0.25, -1.5]), (-1.0, 1.0))
        constant = ChebyshevSeries(np.array([0.75]), (-1.0, 1.0))
        for series in (linear, constant):
            for evaluate in (evaluate_chebyshev, evaluate_chebyshev_horner):
                result = evaluate(env["evaluator"], series, ct)
                assert np.abs(_decode(env, result) - series(x)).max() < HE_TOLERANCE

    @pytest.mark.slow
    @given(
        degree=st.integers(2, 9),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_random_series_decode(self, he_env, degree, seed):
        """Random coefficients/degrees/intervals vs chebval (hypothesis)."""
        env = he_env
        rng = np.random.default_rng(seed)
        coefficients = rng.uniform(-1, 1, degree + 1)
        coefficients[-1] = coefficients[-1] + np.sign(coefficients[-1] + 0.5)
        half_width = float(rng.uniform(0.5, 4.0))
        series = ChebyshevSeries(coefficients, (-half_width, half_width))
        x = rng.uniform(-half_width, half_width, env["params"].slot_count)
        result = evaluate_chebyshev(env["evaluator"], series, _encrypt(env, x))
        scale_tolerance = HE_TOLERANCE * max(1.0, np.abs(series(x)).max())
        assert np.abs(_decode(env, result) - series(x)).max() < scale_tolerance

    def test_power_basis_cache_shares_multiplications(self, he_env):
        env = he_env
        rng = np.random.default_rng(15)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        basis = ChebyshevPowerBasis(env["evaluator"], _encrypt(env, x))
        basis.power(8)
        after_eight = basis.multiplications
        basis.power(4)  # already computed on the way to T_8
        assert basis.multiplications == after_eight
        decoded = _decode(env, basis.power(8))
        expected = np.polynomial.chebyshev.chebval(x, [0] * 8 + [1])
        assert np.abs(decoded - expected).max() < HE_TOLERANCE


class TestEvaluatorAlignment:
    """The level/scale helpers the polynomial engine runs on."""

    def test_mul_plain_scalar(self, he_env):
        env = he_env
        rng = np.random.default_rng(19)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        ct = _encrypt(env, x)
        scaled = env["evaluator"].rescale(
            env["evaluator"].mul_plain_scalar(ct, -0.375)
        )
        assert np.abs(_decode(env, scaled) - (-0.375 * x)).max() < HE_TOLERANCE

    def test_add_sub_scalar_complex(self, he_env):
        env = he_env
        rng = np.random.default_rng(21)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        ct = _encrypt(env, x)
        shifted = env["evaluator"].add_scalar(ct, 0.5 - 0.25j)
        assert np.abs(_decode(env, shifted) - (x + 0.5 - 0.25j)).max() < HE_TOLERANCE
        restored = env["evaluator"].sub_scalar(shifted, 0.5 - 0.25j)
        assert np.abs(_decode(env, restored) - x).max() < HE_TOLERANCE

    def test_rescale_to_deep_drop(self, he_env):
        env = he_env
        rng = np.random.default_rng(23)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        ct = _encrypt(env, x)
        target_scale = float(env["params"].scale)
        dropped = env["evaluator"].rescale_to(ct, 3, target_scale)
        assert dropped.level == 3
        assert dropped.scale == target_scale
        assert np.abs(_decode(env, dropped) - x).max() < HE_TOLERANCE

    def test_rescale_to_rejects_level_raise(self, he_env):
        env = he_env
        ct = _encrypt(env, np.zeros(env["params"].slot_count), level=2)
        with pytest.raises(ValueError):
            env["evaluator"].rescale_to(ct, 5)

    def test_align_pair_mixed_depths(self, he_env):
        env = he_env
        rng = np.random.default_rng(25)
        x = rng.uniform(-1, 1, env["params"].slot_count)
        y = rng.uniform(-1, 1, env["params"].slot_count)
        deep = _encrypt(env, x)
        shallow = env["evaluator"].rescale_to(
            _encrypt(env, y), 6, float(env["params"].scale)
        )
        lhs, rhs = env["evaluator"].align_pair(deep, shallow)
        assert lhs.level == rhs.level == 6
        assert lhs.scale == pytest.approx(rhs.scale)
        total = env["evaluator"].add(lhs, rhs)
        assert np.abs(_decode(env, total) - (x + y)).max() < HE_TOLERANCE

    def test_encode_constant_matches_dense_encode(self, he_env):
        env = he_env
        encoder = env["encoder"]
        slots = env["params"].slot_count
        for value in (0.5, -0.25 + 0.75j, 1j):
            direct = encoder.encode_constant(value, level=4)
            dense = encoder.encode(np.full(slots, value), level=4)
            assert np.abs(
                encoder.decode(direct) - encoder.decode(dense)
            ).max() < 1e-9


class TestEvalMod:
    PERIOD = 2.0

    def make(self, **kwargs):
        defaults = dict(
            k_bound=3, degree=31, double_angle=1, message_width=0.02
        )
        defaults.update(kwargs)
        return EvalModPoly.create(self.PERIOD, **defaults)

    def test_reference_reduces_near_multiples(self):
        evalmod = self.make()
        for i in range(-3, 4):
            m = np.linspace(-0.02, 0.02, 41)
            reduced = evalmod.reference(i * self.PERIOD + m)
            # Sine approximation bound: (2 pi w / P)^2 / 6 relative.
            bound = (2 * np.pi * 0.02 / self.PERIOD) ** 2 / 6 * 0.02 + 1e-9
            assert np.abs(reduced - m).max() < bound * 2

    def test_double_angle_halves_fitted_degree(self):
        folded = self.make(double_angle=1, degree=31)
        flat = self.make(double_angle=0, degree=63)
        assert folded.effective_degree <= flat.effective_degree
        x = np.linspace(-0.02, 0.02, 101)
        assert np.abs(folded.reference(x) - flat.reference(x)).max() < 1e-6

    def test_create_validations(self):
        with pytest.raises(ValueError):
            EvalModPoly.create(-1.0, k_bound=3, degree=15)
        with pytest.raises(ValueError):
            EvalModPoly.create(2.0, k_bound=0, degree=15)
        with pytest.raises(ValueError):
            EvalModPoly.create(2.0, k_bound=3, degree=15, message_width=1.5)

    def test_homomorphic_eval_mod_near_multiples(self, he_env):
        """The accuracy satellite: inputs near multiples of the period."""
        env = he_env
        evalmod = self.make()
        rng = np.random.default_rng(27)
        slots = env["params"].slot_count
        ladder = rng.integers(-3, 4, slots)
        message = rng.uniform(-0.02, 0.02, slots)
        x = ladder * self.PERIOD + message
        env["evaluator"].reset_operation_counts()
        result = eval_mod(env["evaluator"], _encrypt(env, x), evalmod)
        decoded = _decode(env, result).real
        relative = np.abs(decoded - message).max() / np.abs(message).max()
        assert relative < 2.0**-10
        # Counter consistency: the plan prices exactly what ran.
        assert (
            env["evaluator"].operation_counts["he_mult"]
            == evalmod.multiplication_count()
        )

    def test_homomorphic_matches_reference_not_just_exact(self, he_env):
        env = he_env
        evalmod = self.make()
        rng = np.random.default_rng(31)
        slots = env["params"].slot_count
        x = rng.integers(-3, 4, slots) * self.PERIOD + rng.uniform(
            -0.02, 0.02, slots
        )
        result = eval_mod(env["evaluator"], _encrypt(env, x), evalmod)
        assert np.abs(_decode(env, result).real - evalmod.reference(x)).max() < HE_TOLERANCE
