"""Compiler-lowering parity and exactness tests for the ``fused`` backend.

The fused backend executes the compiled form of the `core.compiler` kernel
graph.  This suite pins down the three contracts ISSUE 9 names:

* **Schedule parity** -- the op sequence each lowered :class:`KernelGraph`
  compiles to (`core.schedule`) is exactly what the executing backend runs:
  a traced fused transform fires the schedule's kernel sequence, its GEMM
  count equals the graph's MatMulOp count, and the booked transform /
  Paterson-Stockmeyer accounting (`transform_counts`, `ps_operation_counts`)
  is unchanged by the backend swap.
* **Kernel exactness** -- every importable implementation of every fused
  element-wise kernel (numpy always; numexpr/numba when installed) is
  bit-identical to the eager formula, swept by hypothesis.  Accelerator-only
  cases carry the ``fused`` marker and skip visibly on minimal installs.
* **Backend exactness** -- the fused backend is bit-exact against the
  `ntt_reference` oracle for plans, stacks and batched operands, and its
  dispatch/quarantine behaviour matches the other rungs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import diagnostics
from repro.ckks.poly_eval import ps_operation_counts
from repro.core.kernel_ir import MatMulOp
from repro.core.schedule import (
    REDUCE_CANONICAL,
    REDUCE_LAZY,
    bconv_execution_schedule,
    moddown_execution_schedule,
    ntt_execution_schedule,
    schedule_graph,
)
from repro.errors import ParameterError
from repro.numtheory.crt import RnsBasis, inverse_column, subtract_and_divide
from repro.numtheory.primes import generate_ntt_prime
from repro.poly import fused_kernels, ntt_engine
from repro.poly.fused_kernels import MODE_ENV
from repro.poly.ntt_engine import (
    BACKEND_FOUR_STEP,
    BACKEND_FUSED,
    BACKEND_REFERENCE,
    FusedTables,
    NttPlan,
    NttPlanStack,
    clear_quarantine,
    fused_supported,
    plan_for,
    plan_stack_for,
    quarantine_backend,
    reset_sentinels,
    reset_transform_counts,
    transform_counts,
)
from repro.poly.ntt_reference import ntt_forward_negacyclic


@pytest.fixture(autouse=True)
def clean_dispatch():
    clear_quarantine()
    yield
    clear_quarantine()
    reset_sentinels()


def _fused_plan(degree: int, modulus: int) -> NttPlan:
    base = plan_for(degree, modulus)
    return NttPlan(
        degree=degree, modulus=modulus, psi=base.psi, backend=BACKEND_FUSED
    )


# ------------------------------------------------------------ schedule parity
class TestScheduleLowering:
    def test_ntt_schedule_covers_every_lowered_op(self):
        from repro.core.schedule import _ring_compiler

        compiler = _ring_compiler(4096, 8)
        graph = compiler.ntt(limbs=8)
        schedule = schedule_graph(graph)
        assert sorted(schedule.covered_ops) == sorted(op.name for op in graph.ops)
        assert schedule.gemm_count == sum(
            1 for op in graph.ops if isinstance(op, MatMulOp)
        )

    @pytest.mark.parametrize("inverse", [False, True])
    def test_ntt_kernel_sequence_and_reductions(self, inverse):
        schedule = ntt_execution_schedule(4096, limbs=8, inverse=inverse)
        assert schedule.kernel_sequence == (
            "merge_lazy",
            "twist_split",
            "merge_canonical",
        )
        assert schedule.gemm_count == 2
        reductions = [segment.reduction for segment in schedule.segments]
        assert reductions == [REDUCE_LAZY, REDUCE_LAZY, REDUCE_CANONICAL]
        if inverse:
            # N^{-1} rides the final constant matrix: folded, not executed.
            assert any(
                "scale-by-n-inverse" in name
                for name in schedule.segments[-1].op_names
            )

    def test_bconv_schedule(self):
        schedule = bconv_execution_schedule(4096, limbs_in=2, limbs_out=8)
        assert schedule.kernel_sequence == ("vec_mod_mul", "merge_canonical")

    def test_moddown_schedule(self):
        schedule = moddown_execution_schedule(64, limbs=3, aux=2)
        assert schedule.kernel_sequence == (
            "vec_mod_mul",
            "merge_canonical",
            "moddown_sub_div",
        )

    def test_schedule_is_batch_polymorphic(self):
        lone = ntt_execution_schedule(4096, limbs=8, batch=1)
        batched = ntt_execution_schedule(4096, limbs=8, batch=5)
        assert lone.kernel_sequence == batched.kernel_sequence
        assert lone.gemm_count == batched.gemm_count


class TestExecutionParity:
    DEGREE = 64

    @pytest.fixture(scope="class")
    def ring(self):
        q = generate_ntt_prime(28, self.DEGREE)
        plan = _fused_plan(self.DEGREE, q)
        rng = np.random.default_rng(5)
        probe = rng.integers(0, q, self.DEGREE, dtype=np.uint64)
        return {"q": q, "plan": plan, "probe": probe}

    @pytest.mark.parametrize("inverse", [False, True])
    def test_traced_transform_matches_schedule(self, ring, inverse):
        """A fused transform executes exactly the kernels its schedule names."""
        plan = ring["plan"]
        plan.forward(ring["probe"].copy())  # vet: sentinel runs outside trace
        schedule = plan.fused_tables().execution_schedule(inverse=inverse)
        with fused_kernels.trace() as calls:
            if inverse:
                plan.inverse(ring["probe"].copy())
            else:
                plan.forward(ring["probe"].copy())
        assert tuple(calls) == schedule.kernel_sequence

    def test_traced_stack_matches_schedule(self, rng):
        basis = RnsBasis.generate(3, 28, self.DEGREE)
        stack = NttPlanStack(
            tuple(plan_for(self.DEGREE, q) for q in basis.moduli),
            backend=BACKEND_FUSED,
        )
        matrix = np.stack(
            [rng.integers(0, q, self.DEGREE, dtype=np.uint64) for q in basis.moduli]
        )
        stack.forward(matrix)  # vet
        schedule = ntt_execution_schedule(self.DEGREE, limbs=3)
        with fused_kernels.trace() as calls:
            stack.forward(matrix)
        assert tuple(calls) == schedule.kernel_sequence

    def test_fused_pass_books_transform_counts(self, rng):
        """One fused stacked pass books 1 pass + L limb rows, like any rung."""
        basis = RnsBasis.generate(3, 24, 32)
        stack = NttPlanStack(
            tuple(plan_for(32, q) for q in basis.moduli), backend=BACKEND_FUSED
        )
        tensor = np.stack(
            [
                np.stack(
                    [rng.integers(0, q, 32, dtype=np.uint64) for q in basis.moduli]
                )
                for _ in range(4)
            ]
        )
        stack.forward(tensor)  # vet
        reset_transform_counts()
        stack.forward(tensor)
        counts = transform_counts()
        assert counts["forward"] == 1
        assert counts["forward_limbs"] == 4 * 3
        schedule = ntt_execution_schedule(32, limbs=3, batch=4)
        assert schedule.metadata["limbs"] == 3
        assert schedule.metadata["batch"] == 4

    def test_keyswitch_single_pass_contract_under_fused(self, monkeypatch):
        """REPRO_NTT_BACKEND=fused keeps the 1 fwd + 1 inv switch contract."""
        from repro.ckks.keys import KeyGenerator, digit_partition
        from repro.ckks.keyswitch import switch_key
        from repro.ckks.params import CkksParameters
        from repro.poly.rns_poly import RnsPolynomial

        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        params = CkksParameters.create(
            degree=64, limbs=3, log_q=28, dnum=2, scale_bits=21
        )
        keygen = KeyGenerator(params, rng=np.random.default_rng(7))
        relin = keygen.relinearization_key()
        level = params.limbs
        rng = np.random.default_rng(13)
        d = RnsPolynomial.from_signed_coefficients(
            rng.integers(-1000, 1000, size=params.degree, dtype=np.int64),
            params.basis_at_level(level),
        )
        switch_key(d, relin, params, level)  # warm caches + sentinels
        reset_transform_counts()
        switch_key(d, relin, params, level)
        counts = transform_counts()
        extended_size = params.extended_basis(level).size
        dnum = len(digit_partition(level, params.dnum))
        assert counts["forward"] == 1
        assert counts["inverse"] == 1
        assert counts["forward_limbs"] == dnum * extended_size
        assert counts["inverse_limbs"] == 2 * extended_size

    def test_moddown_executes_scheduled_kernel(self):
        """`mod_down_stacked` runs the schedule's final ``moddown_sub_div``."""
        from repro.ckks.keyswitch import mod_down_stacked
        from repro.ckks.params import CkksParameters

        params = CkksParameters.create(
            degree=64, limbs=3, log_q=28, dnum=2, scale_bits=21
        )
        level = params.limbs
        extended = params.extended_basis(level)
        rng = np.random.default_rng(3)
        stacked = np.stack(
            [rng.integers(0, q, 64, dtype=np.uint64) for q in extended.moduli]
        )
        schedule = moddown_execution_schedule(
            64, limbs=level, aux=params.special_basis.size
        )
        with fused_kernels.trace() as calls:
            mod_down_stacked(stacked, params, level)
        assert schedule.kernel_sequence[-1] in calls

    def test_ps_accounting_is_backend_independent(self, monkeypatch):
        """The symbolic PS op plan does not shift when fused executes it."""
        baseline = ps_operation_counts(31, baby_count=4)
        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        assert ps_operation_counts(31, baby_count=4) == baseline


# ------------------------------------------------------------ kernel exactness
def _eager_merge_lazy(hi, lo, scale, q_f, inv_q):
    hi = hi.copy()
    hi -= np.floor(hi * inv_q) * q_f
    hi *= scale
    hi += lo
    hi -= np.floor(hi * inv_q) * q_f
    return hi


def _float_inputs(seed: int, q: int, shape=(2, 16)):
    rng = np.random.default_rng(seed)
    q_f = np.float64(q)
    inv_q = ntt_engine._under_inverse(q_f)
    hi = rng.integers(0, 1 << 40, shape).astype(np.float64)
    lo = rng.integers(0, 1 << 40, shape).astype(np.float64)
    scale = np.float64(1 << 16)
    return hi, lo, scale, q_f, inv_q


MODES_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("numexpr", id="numexpr", marks=pytest.mark.fused),
    pytest.param("numba", id="numba", marks=pytest.mark.fused),
]


def _impl_or_skip(kernel: str, mode: str):
    impls = fused_kernels.implementations(kernel)
    if mode not in impls:
        pytest.skip(f"{mode} not importable: {kernel} has no {mode} impl")
    return impls[mode]


class TestKernelExactness:
    @pytest.mark.parametrize("mode", MODES_PARAMS)
    @given(seed=st.integers(0, 2**32 - 1), q=st.integers(3, (1 << 28) - 1))
    @settings(max_examples=25, deadline=None)
    def test_merge_lazy_bitwise(self, mode, seed, q):
        impl = _impl_or_skip("merge_lazy", mode)
        hi, lo, scale, q_f, inv_q = _float_inputs(seed, q)
        expected = _eager_merge_lazy(hi, lo, scale, q_f, inv_q)
        got = impl(hi.copy(), lo, scale, q_f, inv_q)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("mode", MODES_PARAMS)
    @given(seed=st.integers(0, 2**32 - 1), q=st.integers(3, (1 << 28) - 1))
    @settings(max_examples=25, deadline=None)
    def test_twist_split_bitwise(self, mode, seed, q):
        impl = _impl_or_skip("twist_split", mode)
        rng = np.random.default_rng(seed)
        q_f = np.float64(q)
        inv_q = ntt_engine._under_inverse(q_f)
        x = rng.integers(0, 2 * q, (2, 16)).astype(np.float64)
        tw_hi = rng.integers(0, 1 << 14, 16).astype(np.float64)
        tw_lo = rng.integers(0, 1 << 14, 16).astype(np.float64)
        scale = np.float64(1 << 14)
        expected = fused_kernels._np_twist_split(
            x, tw_hi, tw_lo, scale, q_f, inv_q
        )
        got = impl(x, tw_hi, tw_lo, scale, q_f, inv_q)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("mode", MODES_PARAMS)
    @given(seed=st.integers(0, 2**32 - 1), q=st.integers(3, (1 << 28) - 1))
    @settings(max_examples=25, deadline=None)
    def test_merge_canonical_bitwise(self, mode, seed, q):
        impl = _impl_or_skip("merge_canonical", mode)
        hi, lo, scale, q_f, inv_q = _float_inputs(seed, q)
        q_u = np.uint64(q)
        expected = fused_kernels._np_merge_canonical(
            hi.copy(), lo, scale, q_f, q_u, inv_q
        )
        got = impl(hi.copy(), lo, scale, q_f, q_u, inv_q)
        assert np.array_equal(got, expected)
        assert got.dtype == np.uint64

    @pytest.mark.parametrize("mode", MODES_PARAMS)
    @pytest.mark.parametrize("kernel", ["vec_mod_mul", "vec_mod_add", "vec_mod_sub"])
    @given(seed=st.integers(0, 2**32 - 1), q=st.integers(3, (1 << 28) - 1))
    @settings(max_examples=25, deadline=None)
    def test_vec_mod_ops_bitwise(self, mode, kernel, seed, q):
        impl = _impl_or_skip(kernel, mode)
        rng = np.random.default_rng(seed)
        q_u = np.uint64(q)
        a = rng.integers(0, q, (3, 8), dtype=np.uint64)
        b = rng.integers(0, q, (3, 8), dtype=np.uint64)
        eager = {
            "vec_mod_mul": lambda: (a * b) % q_u,
            "vec_mod_add": lambda: (a + b) % q_u,
            "vec_mod_sub": lambda: (a + (q_u - b)) % q_u,
        }[kernel]()
        got = impl(a, b, q_u)
        assert np.array_equal(got, eager)

    @pytest.mark.parametrize("mode", MODES_PARAMS)
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_moddown_sub_div_matches_subtract_and_divide(self, mode, seed):
        impl = _impl_or_skip("moddown_sub_div", mode)
        rng = np.random.default_rng(seed)
        basis = RnsBasis.generate(3, 24, 32)
        moduli = basis.moduli_array[:, None]
        residues = np.stack(
            [rng.integers(0, q, 32, dtype=np.uint64) for q in basis.moduli]
        )
        subtrahend = np.stack(
            [rng.integers(0, q, 32, dtype=np.uint64) for q in basis.moduli]
        )
        divisor = 12289
        expected = subtract_and_divide(residues, subtrahend, divisor, basis)
        got = impl(
            residues, subtrahend, moduli, inverse_column(divisor, basis.moduli)
        )
        assert np.array_equal(got, expected)

    def test_kernel_counters_track_calls(self):
        fused_kernels.reset_kernel_counts()
        q_u = np.uint64(97)
        a = np.arange(8, dtype=np.uint64) % q_u
        fused_kernels.vec_mod_mul(a, a, q_u)
        fused_kernels.vec_mod_add(a, a, q_u)
        counts = fused_kernels.kernel_counts()
        assert counts["vec_mod_mul"] == 1
        assert counts["vec_mod_add"] == 1


# --------------------------------------------------------------- mode dispatch
class TestModeDispatch:
    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "warp-drive")
        with pytest.raises(ParameterError):
            fused_kernels.requested_mode()

    def test_numpy_mode_always_available(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "numpy")
        assert fused_kernels.active_mode() == "numpy"
        assert not fused_kernels.accelerated()
        assert "numpy" in fused_kernels.available_modes()

    def test_unavailable_accelerator_falls_back_with_event(self, monkeypatch):
        missing = [
            mode
            for mode in ("numexpr", "numba")
            if fused_kernels._optional_module(mode) is None
        ]
        if not missing:
            pytest.skip("every accelerator is importable in this environment")
        diagnostics.clear_events()
        monkeypatch.setenv(MODE_ENV, missing[0])
        assert fused_kernels.active_mode() == "numpy"
        assert diagnostics.events("fused_kernels_unavailable")

    @pytest.mark.fused
    def test_accelerated_mode_active_when_installed(self):
        if fused_kernels.available_modes() == ("numpy",):
            pytest.skip("no accelerator installed")
        assert fused_kernels.active_mode() in ("numexpr", "numba")
        assert fused_kernels.accelerated()


# ------------------------------------------------------------- backend parity
class TestFusedBackendExactness:
    @pytest.mark.parametrize("degree", [2**4, 2**6, 2**8, 2**12])
    def test_plan_bit_exact_vs_reference(self, degree, rng):
        basis = RnsBasis.generate(1, 28, degree)
        q = basis.moduli[0]
        plan = _fused_plan(degree, q)
        assert plan.resolve_backend() == BACKEND_FUSED
        x = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(
            plan.forward(x), ntt_forward_negacyclic(x, q, plan.psi)
        )
        assert np.array_equal(plan.inverse(plan.forward(x)), x)

    def test_stack_batched_operands_bit_exact(self, rng):
        basis = RnsBasis.generate(3, 28, 256)
        plans = tuple(plan_for(256, q) for q in basis.moduli)
        fused = NttPlanStack(plans, backend=BACKEND_FUSED)
        reference = NttPlanStack(plans, backend=BACKEND_REFERENCE)
        tensor = np.stack(
            [
                np.stack(
                    [rng.integers(0, q, 256, dtype=np.uint64) for q in basis.moduli]
                )
                for _ in range(3)
            ]
        )
        expected = reference.forward(tensor)
        assert np.array_equal(fused.forward(tensor), expected)
        assert np.array_equal(fused.inverse(expected), tensor)

    @given(
        log_degree=st.integers(4, 12),
        bits=st.integers(14, 29),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_fused_tables_oracle(self, log_degree, bits, seed):
        degree = 1 << log_degree
        bits = max(bits, log_degree + 2)
        try:
            q = generate_ntt_prime(bits, degree)
        except ValueError:
            return
        base = plan_for(degree, q)
        tables = FusedTables(degree, q, base.psi)
        if not tables.exact:
            assert not fused_supported(degree, (q,))
            return
        rng = np.random.default_rng(seed)
        x = rng.integers(0, q, degree, dtype=np.uint64)
        fwd = tables.forward(x)
        assert np.array_equal(fwd, ntt_forward_negacyclic(x, q, base.psi))
        assert np.array_equal(tables.inverse(fwd), x)

    def test_quarantined_fused_heals_to_four_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_NTT_BACKEND", "fused")
        q = generate_ntt_prime(28, 64)
        plan = plan_for(64, q)
        assert plan.resolve_backend() == BACKEND_FUSED
        quarantine_backend(BACKEND_FUSED, reason="drill")
        try:
            assert plan.resolve_backend() == BACKEND_FOUR_STEP
        finally:
            clear_quarantine()

    def test_fused_never_selected_when_inexact(self):
        degree = 1 << 13
        q = generate_ntt_prime(31, degree)  # too wide for butterfly too
        assert not fused_supported(degree, (q,))
        choice = ntt_engine.resolve_backend(
            degree, (q,), requested=BACKEND_FUSED
        )
        assert choice == BACKEND_REFERENCE
